(* Adversarial workloads: the best-effort recreation of worst cases on the
   executable kernel, per Section 5.4 of the paper.

   Caches are polluted with dirty lines before every measured entry; the
   worst observed value over several polluted runs is reported (the paper
   took the maximum of 100,000 executions; the seeds here exercise
   distinct cache eviction patterns, which is what matters in a
   deterministic simulator). *)

open Sel4.Ktypes
module K = Sel4.Kernel
module B = Sel4.Boot

type scenario = {
  env : B.env;
  cpu : Hw.Cpu.t;
  measured_event : K.event;
  victim : tcb;  (* the thread that traps for the measured event *)
}

(* Build the Figure 7 capability space: a chain of radix-1 CNodes, one
   decode level per address bit.  Slot 0 of each node points at the next
   level; slot 1 can hold a leaf capability reachable at a distinct
   address. *)
let build_deep_cspace env ~depth =
  let k = env.B.k in
  let nodes =
    List.init depth (fun _ ->
        let dest = K.new_root_slot k in
        match
          Sel4.Untyped_ops.retype (K.ctx k)
            ~fresh_id:(fun () -> K.fresh_id k)
            ~register:(K.register k) ~ut_slot:env.B.ut_slot (Cnode_object 1)
            ~count:1 ~dest_slots:[ dest ]
        with
        | Sel4.Untyped_ops.Done [ Cnode_cap { cnode; _ } ] -> cnode
        | _ -> failwith "deep cspace: retype failed")
  in
  let rec link = function
    | a :: (b :: _ as rest) ->
        a.cn_slots.(0).cap <- Cnode_cap { cnode = b; guard = 0; guard_bits = 0 };
        K.incref k a.cn_slots.(0).cap;
        link rest
    | _ -> ()
  in
  link nodes;
  let root =
    match nodes with
    | first :: _ -> Cnode_cap { cnode = first; guard = 0; guard_bits = 0 }
    | [] -> failwith "deep cspace: no nodes"
  in
  (root, Array.of_list nodes)

(* Place a leaf capability at the cptr that decodes through [levels]
   levels of the chain: all-zero path, final bit selecting slot 1. *)
let place_leaf k nodes ~level cap =
  let node = nodes.(level) in
  node.cn_slots.(1).cap <- cap;
  K.incref k cap;
  (* Decoding consumes address bits from the top: level [i] of the radix-1
     chain consumes bit [31 - i], so selecting slot 1 at this level means
     setting exactly that bit.  Resolution stops at the leaf (a non-CNode
     capability), whatever the chain depth. *)
  1 lsl (31 - level)

(* The worst-case system call: an atomic send with a full-length message
   and granted capabilities, every capability address decoding through the
   full-depth space, delivered to a waiting (badged) receiver. *)
let worst_syscall (ctx : Analysis_ctx.t) =
  let params = ctx.Analysis_ctx.params in
  let cpu = Hw.Cpu.create ctx.Analysis_ctx.config in
  let env = B.boot ~cpu ctx.Analysis_ctx.build in
  let k = env.B.k in
  let ep = B.spawn_endpoint env ~dest:10 in
  ignore ep;
  let server = B.spawn_thread env ~priority:150 ~dest:11 in
  let client = B.spawn_thread env ~priority:120 ~dest:12 in
  B.make_runnable env server;
  B.make_runnable env client;
  let root, nodes = build_deep_cspace env ~depth:params.Kernel_model.decode_depth in
  (* Leaf caps: the endpoint (badged) at the deepest slot, plus the extra
     caps to grant at the next levels up. *)
  let ep_cap = env.B.root_cnode.cn_slots.(10).cap in
  let badged =
    match ep_cap with
    | Endpoint_cap c -> Endpoint_cap { c with badge = 42 }
    | _ -> failwith "no endpoint"
  in
  let ep_cptr = place_leaf k nodes ~level:(Array.length nodes - 1) badged in
  let extra_cptrs =
    List.init params.Kernel_model.extra_caps (fun i ->
        place_leaf k nodes
          ~level:(Array.length nodes - 2 - i)
          ep_cap)
  in
  client.cspace_root <- root;
  server.recv_slot <- Some (env.B.root_cnode.cn_slots.(60));
  (* Server waits. *)
  K.force_run k server;
  (match K.kernel_entry k (K.Ev_recv { ep = 10 }) with
  | K.Completed -> ()
  | _ -> failwith "server recv failed");
  K.force_run k client;
  for i = 0 to params.Kernel_model.msg_words - 1 do
    client.regs.(i) <- i
  done;
  {
    env;
    cpu;
    measured_event =
      K.Ev_call
        {
          ep = ep_cptr;
          badge_hint = 0;
          msg_len = params.Kernel_model.msg_words;
          extra_caps = extra_cptrs;
        };
    victim = client;
  }

(* Worst interrupt: handler registered and waiting, polluted caches. *)
let worst_interrupt (ctx : Analysis_ctx.t) =
  let cpu = Hw.Cpu.create ctx.Analysis_ctx.config in
  let env = B.boot ~cpu ctx.Analysis_ctx.build in
  let k = env.B.k in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let handler = B.spawn_thread env ~priority:200 ~dest:11 in
  B.make_runnable env handler;
  (match
     K.run_to_completion k
       (K.Ev_invoke (K.Inv_irq_handler { line = 5; ep = 10 }))
   with
  | K.Completed -> ()
  | _ -> failwith "irq handler setup failed");
  K.force_run k handler;
  (match K.kernel_entry k (K.Ev_recv { ep = 10 }) with
  | K.Completed -> ()
  | _ -> failwith "handler recv failed");
  K.force_run k env.B.root_tcb;
  { env; cpu; measured_event = K.Ev_interrupt; victim = env.B.root_tcb }

(* Worst fault: fault-handler endpoint addressed through the full-depth
   capability space (one decode, as the paper notes for these entry
   points), pager waiting. *)
let worst_fault (ctx : Analysis_ctx.t) ~event =
  let params = ctx.Analysis_ctx.params in
  let cpu = Hw.Cpu.create ctx.Analysis_ctx.config in
  let env = B.boot ~cpu ctx.Analysis_ctx.build in
  let k = env.B.k in
  let _ep = B.spawn_endpoint env ~dest:10 in
  let pager = B.spawn_thread env ~priority:200 ~dest:11 in
  B.make_runnable env pager;
  (* The fault handler endpoint hides at the bottom of a full-depth
     capability space, so each fault pays the one worst-case decode. *)
  let root, nodes = build_deep_cspace env ~depth:params.Kernel_model.decode_depth in
  let ep_cap = env.B.root_cnode.cn_slots.(10).cap in
  let handler_cptr =
    place_leaf env.B.k nodes ~level:(Array.length nodes - 1) ep_cap
  in
  env.B.root_tcb.cspace_root <- root;
  env.B.root_tcb.fault_handler_cptr <- Some handler_cptr;
  K.force_run k pager;
  (match K.kernel_entry k (K.Ev_recv { ep = 10 }) with
  | K.Completed -> ()
  | _ -> failwith "pager recv failed");
  K.force_run k env.B.root_tcb;
  { env; cpu; measured_event = event; victim = env.B.root_tcb }

let scenario ctx entry =
  match entry with
  | Kernel_model.Syscall -> worst_syscall ctx
  | Kernel_model.Interrupt -> worst_interrupt ctx
  | Kernel_model.Page_fault ->
      worst_fault ctx ~event:(K.Ev_page_fault { vaddr = 0xdead000 })
  | Kernel_model.Undefined_instruction ->
      worst_fault ctx ~event:K.Ev_undefined_instruction

(* Measure one kernel entry with polluted caches; the scenario is reused
   across seeds (only cache contents vary). *)
let measure_once scenario ~seed =
  let k = scenario.env.B.k in
  (match scenario.measured_event with
  | K.Ev_interrupt -> K.raise_irq k 5
  | _ -> ());
  K.force_run k scenario.victim;
  Hw.Machine.pollute (Hw.Cpu.machine scenario.cpu) ~seed;
  let before = Hw.Cpu.cycles scenario.cpu in
  let outcome = K.kernel_entry k scenario.measured_event in
  let cycles = Hw.Cpu.cycles scenario.cpu - before in
  (outcome, cycles)

exception
  Scenario_failed of { entry : string; seed : int; reason : string }

let () =
  Printexc.register_printer (function
    | Scenario_failed { entry; seed; reason } ->
        Some (Fmt.str "Scenario_failed(entry=%s seed=%d: %s)" entry seed reason)
    | _ -> None)

(* Fold one run's hardware counters into the global metrics registry, so
   `sel4rt metrics` and `bench --json` report total simulated work. *)
let note_hw_metrics cpu =
  let c = Hw.Cpu.counters cpu in
  let add name v = Obs.Metrics.incr ~by:v (Obs.Metrics.counter name) in
  add "hw.instructions" c.Hw.Cpu.instructions;
  add "hw.loads" c.Hw.Cpu.loads;
  add "hw.stores" c.Hw.Cpu.stores;
  add "hw.branches" c.Hw.Cpu.branches;
  add "hw.cycles" c.Hw.Cpu.cycles;
  add "hw.stall_cycles" (Hw.Cpu.stall_cycles cpu)

let check_outcome entry ~seed outcome =
  match outcome with
  | K.Failed e ->
      raise
        (Scenario_failed
           { entry = Kernel_model.entry_name entry; seed; reason = e })
  | K.Completed | K.Preempted -> ()

(* Observed worst case: maximum over polluted runs.  Every run must leave
   the system able to repeat the measurement, so the syscall scenario
   rebuilds the rendezvous between runs. *)
let observed ?(runs = 25) ctx entry =
  let worst = ref 0 in
  for seed = 1 to runs do
    let s = scenario ctx entry in
    let outcome, cycles = measure_once s ~seed in
    check_outcome entry ~seed outcome;
    note_hw_metrics s.cpu;
    if cycles > !worst then worst := cycles
  done;
  !worst

(* --- traced measurement and latency attribution --- *)

type provenance = {
  workload : string;
  worst_seed : int;
  section : string;
  section_cycles : int;
  cycles_to_preempt : int option;
  stall_cycles : int;
  compute_cycles : int;
}

let pp_provenance ppf p =
  Fmt.pf ppf "%s seed=%d section=%s (%d cycles%a, stall=%d compute=%d)"
    p.workload p.worst_seed p.section p.section_cycles
    (fun ppf -> function
      | None -> ()
      | Some c -> Fmt.pf ppf ", %d to preempt" c)
    p.cycles_to_preempt p.stall_cycles p.compute_cycles

(* Run one scenario with an event trace attached.  Emission charges
   nothing, so the cycle count is identical to an untraced run. *)
let run_traced ~buf ~seed ctx entry =
  let s = scenario ctx entry in
  Hw.Cpu.set_trace_buffer s.cpu buf;
  let outcome, cycles = measure_once s ~seed in
  Hw.Cpu.clear_trace_buffer s.cpu;
  note_hw_metrics s.cpu;
  (outcome, cycles)

(* Attribute one run: for the interrupt entry, break down the delivery
   latency; for the other entries, find the longest stretch between
   preemption opportunities. *)
let attribute entry events =
  match entry with
  | Kernel_model.Interrupt -> (
      match List.rev (Obs.Attrib.irq_breakdowns events) with
      | bd :: _ ->
          Some
            ( bd.Obs.Attrib.section,
              bd.Obs.Attrib.latency,
              bd.Obs.Attrib.cycles_to_preempt,
              bd.Obs.Attrib.stall_cycles,
              bd.Obs.Attrib.compute_cycles )
      | [] -> None)
  | _ -> (
      match Obs.Attrib.longest_nonpreemptible events with
      | Some sec ->
          Some
            ( sec.Obs.Attrib.sec_label,
              sec.Obs.Attrib.sec_cycles,
              None,
              sec.Obs.Attrib.sec_stall,
              sec.Obs.Attrib.sec_cycles - sec.Obs.Attrib.sec_stall )
      | None -> None)

(* Observed worst case with provenance: same maximum as {!observed} (the
   trace buffer never charges cycles), plus the attribution of the worst
   run — which section it sat in, how far the next preemption point was,
   and the stall/compute split. *)
let observed_traced ?(runs = 25) ctx entry =
  let name = Kernel_model.entry_name entry in
  let worst = ref 0 in
  let prov =
    ref
      {
        workload = name;
        worst_seed = 0;
        section = "unknown";
        section_cycles = 0;
        cycles_to_preempt = None;
        stall_cycles = 0;
        compute_cycles = 0;
      }
  in
  for seed = 1 to runs do
    let s = scenario ctx entry in
    let buf = Obs.Trace.create () in
    Hw.Cpu.set_trace_buffer s.cpu buf;
    let outcome, cycles = measure_once s ~seed in
    Hw.Cpu.clear_trace_buffer s.cpu;
    note_hw_metrics s.cpu;
    check_outcome entry ~seed outcome;
    if cycles > !worst || seed = 1 then begin
      if cycles > !worst then worst := cycles;
      match attribute entry (Obs.Trace.events buf) with
      | Some (section, section_cycles, cycles_to_preempt, stall, compute) ->
          prov :=
            {
              workload = name;
              worst_seed = seed;
              section;
              section_cycles;
              cycles_to_preempt;
              stall_cycles = stall;
              compute_cycles = compute;
            }
      | None -> prov := { !prov with worst_seed = seed }
    end
  done;
  (!worst, !prov)
