(** Fixed-size Domain worker pool for fanning analysis jobs out across
    (entry point x hardware configuration x build) tuples.

    Jobs must be pure functions of their inputs (every analysis and
    simulator run in this repository allocates its state per call), which
    makes parallel evaluation deterministic: [map] and [run_all] return
    results in submission order, identical to the serial path.

    The submitting domain participates in draining its own batch, so a
    batch cannot deadlock behind busy workers; nested calls from worker
    domains run serially.  Exceptions raised by jobs are re-raised in the
    submitter once the batch has drained. *)

type t

val create : ?domains:int -> unit -> t
(** A pool that runs jobs on [domains] domains in total (the submitter
    counts as one; [domains - 1] workers are spawned).  Default: the
    [SEL4RT_DOMAINS] environment variable, else
    [min 8 (Domain.recommended_domain_count ())]. *)

val default : unit -> t
(** The shared process-wide pool, created on first use. *)

val size : t -> int
(** Number of domains that can run jobs concurrently (workers + submitter). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Run a batch of thunks, returning results in submission order. *)

val fold_ordered :
  t -> init:'b -> merge:('b -> 'a -> 'b) -> (unit -> 'a) list -> 'b
(** Run a batch of thunks and fold their results in submission order,
    merging each result on the submitting domain as soon as the ordered
    prefix is complete.  Semantically [run_all] followed by
    [List.fold_left merge init], but streaming: at most the out-of-order
    window of results (bounded by the domain count) is retained, so memory
    stays constant in the batch size.  Merge order never depends on
    completion order.  Exceptions raised by jobs are re-raised after the
    batch drains; an errored job contributes nothing to the fold. *)

val set_serial : bool -> unit
(** Force every subsequent [map] onto the calling domain (used to measure
    the serial baseline in benchmarks and determinism tests). *)

val shutdown : t -> unit
(** Stop and join the pool's workers.  Do not call on {!default}'s pool
    while other domains may still submit. *)
