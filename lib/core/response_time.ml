(* Response-time analysis driver: computed (IPET) and observed
   (adversarial execution) worst cases per kernel entry point, and the
   headline quantity of the paper — the worst-case interrupt response
   time, which is the sum of the longest kernel operation (the system-call
   path) and the interrupt path (Section 6). *)

type pins = { code : int list; data : int list }

let no_pins = { code = []; data = [] }

(* All computed (IPET) quantities route through the analysis-engine cache:
   identical (build, entry, config, pins, params, forced) tuples are
   analysed once per process, whichever experiment asks first. *)

let computed ?params ?(pins = no_pins) ~config build entry =
  Analysis_cache.computed ?params ~pinned_code:pins.code ~pinned_data:pins.data
    ~config build entry

let computed_cycles ?params ?pins ~config build entry =
  (computed ?params ?pins ~config build entry).Wcet.Ipet.wcet

(* Computed execution time of the realisable path (Section 6.2: extra ILP
   constraints force analysis of the tested path). *)
let computed_for_path ?(params = Kernel_model.default_params) ~config build
    entry =
  let forced = Kernel_model.realisable_path ~params entry in
  (Analysis_cache.computed ~params ~forced ~config build entry).Wcet.Ipet.wcet

let observed ?runs ?params ~config build entry =
  Workloads.observed ?runs ?params ~config build entry

let observed_traced ?runs ?params ~config build entry =
  Workloads.observed_traced ?runs ?params ~config build entry

(* Worst-case interrupt response: the longest non-preemptible kernel path
   (the system call handler) plus the interrupt path itself. *)
let interrupt_response_bound ?params ?pins ~config build =
  computed_cycles ?params ?pins ~config build Kernel_model.Syscall
  + computed_cycles ?params ?pins ~config build Kernel_model.Interrupt

let us config cycles = Hw.Config.cycles_to_us config cycles
