(* Response-time analysis driver: computed (IPET) and observed
   (adversarial execution) worst cases per kernel entry point, and the
   headline quantity of the paper — the worst-case interrupt response
   time, which is the sum of the longest kernel operation (the system-call
   path) and the interrupt path (Section 6).

   All drivers take an {!Analysis_ctx.t}. *)

type pins = Analysis_ctx.pins = { code : int list; data : int list }

let no_pins = Analysis_ctx.no_pins

(* All computed (IPET) quantities route through the analysis-engine cache:
   identical (build, entry, config, pins, params, forced) tuples are
   analysed once per process, whichever experiment asks first. *)

let computed (ctx : Analysis_ctx.t) entry =
  Analysis_cache.computed ~params:ctx.Analysis_ctx.params
    ~pinned_code:ctx.Analysis_ctx.pins.code
    ~pinned_data:ctx.Analysis_ctx.pins.data ~config:ctx.Analysis_ctx.config
    ctx.Analysis_ctx.build entry

let computed_cycles ctx entry = (computed ctx entry).Wcet.Ipet.wcet

(* Computed execution time of the realisable path (Section 6.2: extra ILP
   constraints force analysis of the tested path). *)
let computed_for_path (ctx : Analysis_ctx.t) entry =
  let params = ctx.Analysis_ctx.params in
  let forced = Kernel_model.realisable_path ~params entry in
  (Analysis_cache.computed ~params ~pinned_code:ctx.Analysis_ctx.pins.code
     ~pinned_data:ctx.Analysis_ctx.pins.data ~forced
     ~config:ctx.Analysis_ctx.config ctx.Analysis_ctx.build entry)
    .Wcet.Ipet.wcet

let observed ?runs ctx entry = Workloads.observed ?runs ctx entry
let observed_traced ?runs ctx entry = Workloads.observed_traced ?runs ctx entry

(* Worst-case interrupt response: the longest non-preemptible kernel path
   (the system call handler) plus the interrupt path itself. *)
let interrupt_response_bound ctx =
  computed_cycles ctx Kernel_model.Syscall
  + computed_cycles ctx Kernel_model.Interrupt

(* Bound decomposition: the optimal IPET basis of an entry point rendered
   as per-block cycle contributions (Obs.Bound_profile).  Routed through
   the same cache as [computed], so explaining a bound never re-solves. *)
let profile ctx entry =
  Wcet.Explain.profile ~config:ctx.Analysis_ctx.config
    ~entry:(Kernel_model.entry_main entry)
    (computed ctx entry)

(* The full response-time decomposition: syscall path followed by the
   interrupt path; total = interrupt_response_bound by construction. *)
let interrupt_response_profile ctx =
  Obs.Bound_profile.concat ~entry:"kernel_entry"
    [ profile ctx Kernel_model.Syscall; profile ctx Kernel_model.Interrupt ]

let us config cycles = Hw.Config.cycles_to_us config cycles
