(** The simulated memory hierarchy: split L1 caches (with way lockdown for
    pinning), an optional unified L2, external memory, and branch costs.

    Every access returns its cost in cycles; the {!Cpu} module accumulates
    these into a cycle counter. *)

type t

val create : Config.t -> t
val config : t -> Config.t
val icache : t -> Cache.t
val dcache : t -> Cache.t
val l2 : t -> Cache.t option

val read : t -> int -> int
(** Cycles for a data load at the given address. *)

val write : t -> int -> int
(** Cycles for a data store at the given address. *)

val fetch : t -> int -> int
(** Cycles of instruction-fetch stall for the given code address (0 on an
    L1-I hit, where the fetch overlaps execution). *)

val fetch_run : t -> base:int -> count:int -> int
(** Total fetch stall for [count] sequential 4-byte instruction fetches
    starting at [base].  Cycle- and state-identical to summing {!fetch}
    over each address, but probes the I-cache only once per line (the
    remaining fetches on a line are guaranteed hits). *)

val branch : t -> pc:int -> taken:bool -> int
(** Branch cost: constant with the predictor disabled, outcome-dependent
    otherwise. *)

val pin_icache : t -> int -> bool
val pin_dcache : t -> int -> bool

val set_pin_evict_hook : t -> (string -> int -> unit) option -> unit
(** Observation hook for pin evictions in either L1 cache; the callback
    receives the cache name (["icache"]/["dcache"]) and the victim line
    address.  Purely observational. *)

val pollute : t -> seed:int -> unit
(** Fill all unpinned cache lines with dirty junk and reset the predictor:
    the adversarial pre-state for worst-case measurements. *)

val flush : t -> unit
