(** Set-associative cache with true-LRU replacement and way lockdown.

    Way lockdown models the ARM1136 cache-pinning facility used in Section 4
    of the paper: the first [k] ways of every set can be reserved for pinned
    lines, which the replacement policy then never evicts. *)

type t

type policy = Lru | Round_robin
(** The ARM1136 replaces round-robin (or pseudo-random); LRU is the
    deterministic stand-in the simulator defaults to.  The conservative
    one-way analysis model of Section 5.1 is sound for both. *)

type outcome = Hit | Miss of { evicted_dirty : bool }

val create : ?policy:policy -> line_size:int -> sets:int -> ways:int -> unit -> t
(** [line_size] and [sets] must be powers of two.  Default policy: LRU. *)

val line_size : t -> int
val sets : t -> int
val ways : t -> int
val size_bytes : t -> int

val lock_ways : t -> int -> unit
(** Reserve the first [k] ways of every set for pinned lines.  At least one
    way must remain unlocked. *)

val locked_ways : t -> int

val set_index : t -> int -> int
(** Set index of an address (for conflict reasoning in tests/analysis). *)

val line_addr : t -> int -> int
(** Address rounded down to its line boundary. *)

val access : t -> write:bool -> int -> outcome
(** Perform an access, updating LRU state and inserting the line on a miss
    (into an unlocked way). *)

val access_enc : t -> write:bool -> int -> int
(** Allocation-free variant of {!access} for the simulator's hot loop:
    returns [0] for a hit, [1] for a miss with no dirty eviction, [2] for a
    miss that evicted a dirty line.  Identical state evolution to
    {!access}. *)

val note_seq_hits : t -> int -> unit
(** Account [n] hits without probing the cache.  Only sound when the caller
    knows the accesses would hit the line made most-recently-used by the
    immediately preceding access (e.g. sequential fetches within one
    I-cache line): re-touching the MRU line cannot change any future
    replacement decision, so statistics are the only state to update. *)

val probe : t -> int -> bool
(** Does the address currently hit?  No state update. *)

val pin : t -> int -> bool
(** Install the line containing the address into a locked way and mark it
    pinned.  Returns [false] if no locked way is available in its set. *)

val pinned : t -> int -> bool

val set_pin_evict_hook : t -> (int -> unit) option -> unit
(** Observation hook, called with the victim's line address whenever a
    pinned line is evicted by {!access} (it lived in an unlocked way) or a
    {!pin} installation displaces a resident line.  Purely observational:
    no cost, no state change. *)

val flush : ?keep_pinned:bool -> t -> unit
(** Invalidate all lines; pinned lines are kept unless [keep_pinned:false]. *)

val pollute : ?dirty:bool -> t -> seed:int -> unit
(** Fill all unpinned ways with junk lines (dirty by default), recreating
    the cold polluted-cache state used for worst-case measurements
    (Section 5.4). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  dirty_evictions : int;
}

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : stats Fmt.t
