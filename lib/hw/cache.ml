(* Set-associative cache with way lockdown and a choice of replacement
   policy.

   The ARM1136's caches replace round-robin (or pseudo-random); true LRU
   is the deterministic stand-in the rest of the simulator defaults to.
   Both are supported — and both are soundly over-approximated by the
   paper's one-way direct-mapped analysis model, because a model hit means
   no other access touched the set in between, so no replacement policy
   can have evicted the line.

   Lockdown models the ARM1136 cache-pinning facility of Section 4: the
   first [locked_ways] ways of every set are reserved for pinned lines,
   and the replacement policy only ever considers the remaining ways.

   Line state is a flat int array of interleaved (tag, state) word pairs:
   a whole 4-way set spans 64 bytes, so probing a set — the hottest loop
   of the soak simulator, hundreds of millions of runs per campaign —
   touches one or two host cache lines instead of chasing one boxed
   record per way.  [state] packs the LRU stamp with the dirty/pinned
   bits ([lru lsl 2 lor pinned lsl 1 lor dirty]); LRU comparisons use
   [state asr 2] so flag bits never influence victim choice. *)

type policy = Lru | Round_robin

let s_dirty = 1
let s_pinned = 2

type t = {
  line_size : int;
  sets : int;
  ways : int;
  policy : policy;
  line_shift : int;  (* log2 line_size: index/tag extraction by shift *)
  set_mask : int;  (* sets - 1 *)
  idx_shift : int;  (* line_shift + log2 sets *)
  mutable locked_ways : int;
  data : int array;
      (* line [set * ways + way]: tag at [2 * line] (-1 = invalid), packed
         state at [2 * line + 1] *)
  rr_next : int array;  (* round-robin victim cursor, per set *)
  mutable clock : int;  (* monotonic counter driving LRU ordering *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
  mutable on_pin_evict : (int -> unit) option;
      (* observation hook: a pinned line was evicted, or installing a pin
         displaced a resident line (argument: the victim's line address) *)
}

type outcome = Hit | Miss of { evicted_dirty : bool }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(policy = Lru) ~line_size ~sets ~ways () =
  assert (is_pow2 line_size && is_pow2 sets && ways > 0);
  let data = Array.make (sets * ways * 2) 0 in
  for l = 0 to (sets * ways) - 1 do
    data.(2 * l) <- -1
  done;
  {
    line_size;
    sets;
    ways;
    policy;
    line_shift = log2 line_size;
    set_mask = sets - 1;
    idx_shift = log2 line_size + log2 sets;
    locked_ways = 0;
    data;
    rr_next = Array.make sets 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    dirty_evictions = 0;
    on_pin_evict = None;
  }

let line_size t = t.line_size
let sets t = t.sets
let ways t = t.ways
let size_bytes t = t.line_size * t.sets * t.ways

let lock_ways t k =
  if k < 0 || k >= t.ways then
    invalid_arg "Cache.lock_ways: must leave at least one unlocked way";
  t.locked_ways <- k

let locked_ways t = t.locked_ways

let set_index t addr = (addr lsr t.line_shift) land t.set_mask
let tag_of t addr = addr lsr t.idx_shift
let line_addr t addr = addr land lnot (t.line_size - 1)
let addr_of t ~tag ~set = ((tag * t.sets) + set) * t.line_size

let set_pin_evict_hook t f = t.on_pin_evict <- f

(* [p] is the word index of a line's tag; [si] its set. *)
let notify_pin_evict t si p =
  match t.on_pin_evict with
  | Some f when t.data.(p) >= 0 -> f (addr_of t ~tag:t.data.(p) ~set:si)
  | _ -> ()

(* Word indices below always come from a set's own word range, bounded by
   the geometry, so the hot paths use unchecked array access. *)
let touch t p =
  t.clock <- t.clock + 1;
  let flags = Array.unsafe_get t.data (p + 1) land 3 in
  Array.unsafe_set t.data (p + 1) ((t.clock lsl 2) lor flags)

(* Word index of the tag matching [tag] in the set whose words start at
   [base], or -1.  Plain loop over unboxed locals: an inner [let rec]
   would close over its environment and heap-allocate on every probe. *)
let find_tag t ~base ~tag =
  let data = t.data in
  let limit = base + (2 * t.ways) in
  let p = ref (-1) in
  let i = ref base in
  while !p < 0 && !i < limit do
    if Array.unsafe_get data !i = tag then p := !i else i := !i + 2
  done;
  !p

(* Victim selection among the unlocked ways: least-recently-used (invalid
   lines carry lru = 0 and lose ties to the lowest way), or the ARM1136's
   rotating cursor.  Returns the victim's tag-word index. *)
let victim t si base =
  match t.policy with
  | Lru ->
      let data = t.data in
      let best = ref (base + (2 * t.locked_ways)) in
      let p = ref (base + (2 * t.locked_ways) + 2) in
      let limit = base + (2 * t.ways) in
      while !p < limit do
        if
          Array.unsafe_get data (!p + 1) asr 2
          < Array.unsafe_get data (!best + 1) asr 2
        then best := !p;
        p := !p + 2
      done;
      !best
  | Round_robin ->
      let unlocked = t.ways - t.locked_ways in
      let way = t.locked_ways + (t.rr_next.(si) mod unlocked) in
      t.rr_next.(si) <- (t.rr_next.(si) + 1) mod unlocked;
      base + (2 * way)

(* Encoded outcome of the allocation-free access path: 0 = hit,
   1 = miss (clean or no eviction), 2 = miss evicting a dirty line.
   The hot simulation loop runs billions of accesses; the [outcome]
   variant (and an [option] in the way scan) would each heap-box every
   single one. *)
let hit_enc = 0
let miss_clean_enc = 1
let miss_dirty_enc = 2

let access_enc t ~write addr =
  let si = set_index t addr in
  let base = si * t.ways * 2 in
  let tag = tag_of t addr in
  let p = find_tag t ~base ~tag in
  if p >= 0 then begin
    t.hits <- t.hits + 1;
    let s = Array.unsafe_get t.data (p + 1) in
    if write then Array.unsafe_set t.data (p + 1) (s lor s_dirty);
    if s land s_pinned = 0 then touch t p;
    hit_enc
  end
  else begin
    t.misses <- t.misses + 1;
    if t.locked_ways >= t.ways then miss_clean_enc
    else begin
      let p = victim t si base in
      let valid = Array.unsafe_get t.data p >= 0 in
      let s = Array.unsafe_get t.data (p + 1) in
      let evicted_dirty = valid && s land s_dirty <> 0 in
      if valid then begin
        t.evictions <- t.evictions + 1;
        if s land s_dirty <> 0 then t.dirty_evictions <- t.dirty_evictions + 1
      end;
      (* A pinned line living in an unlocked way offers no protection:
         losing it here is exactly the event pinning diagnostics want. *)
      if s land s_pinned <> 0 then notify_pin_evict t si p;
      Array.unsafe_set t.data p tag;
      Array.unsafe_set t.data (p + 1) (if write then s_dirty else 0);
      touch t p;
      if evicted_dirty then miss_dirty_enc else miss_clean_enc
    end
  end

let access t ~write addr =
  match access_enc t ~write addr with
  | 0 -> Hit
  | 1 -> Miss { evicted_dirty = false }
  | _ -> Miss { evicted_dirty = true }

(* Account [n] guaranteed hits without probing the set.  Only valid when
   the caller knows the accesses would hit and leave replacement state
   unchanged: consecutive fetches to a line that the immediately preceding
   access made most-recently-used.  Re-touching the MRU line is a no-op
   for every future LRU decision, and round-robin ignores touches
   entirely, so skipping the probe preserves cycle-exact behaviour. *)
let note_seq_hits t n = t.hits <- t.hits + n

let probe t addr =
  find_tag t ~base:(set_index t addr * t.ways * 2) ~tag:(tag_of t addr) >= 0

let pin t addr =
  if t.locked_ways = 0 then false
  else begin
    let si = set_index t addr in
    let base = si * t.ways * 2 in
    let tag = tag_of t addr in
    let p = find_tag t ~base ~tag in
    if p >= 0 then begin
      t.data.(p + 1) <- t.data.(p + 1) lor s_pinned;
      true
    end
    else begin
      (* Install in the first free locked way of the set, if any. *)
      let rec place way =
        if way >= t.locked_ways then false
        else begin
          let p = base + (2 * way) in
          if t.data.(p) = -1 || t.data.(p + 1) land s_pinned = 0 then begin
            notify_pin_evict t si p;
            t.data.(p) <- tag;
            t.data.(p + 1) <- s_pinned;
            touch t p;
            true
          end
          else place (way + 1)
        end
      in
      place 0
    end
  end

let pinned t addr =
  let p = find_tag t ~base:(set_index t addr * t.ways * 2) ~tag:(tag_of t addr) in
  p >= 0 && t.data.(p + 1) land s_pinned <> 0

let flush ?(keep_pinned = true) t =
  for l = 0 to (t.sets * t.ways) - 1 do
    if not (keep_pinned && t.data.((2 * l) + 1) land s_pinned <> 0) then begin
      t.data.(2 * l) <- -1;
      t.data.((2 * l) + 1) <- 0
    end
  done

(* Fill every non-pinned way of every set with dirty junk lines whose tags
   cannot collide with real addresses (tags beyond the address space).  Used
   to create the cold, polluted cache state of the paper's worst-case
   measurement runs (Section 5.4). *)
let pollute ?(dirty = true) t ~seed =
  let junk_tag set way = max_int / 2 + (set * t.ways) + way + (seed land 0xffff) in
  for si = 0 to t.sets - 1 do
    for wi = 0 to t.ways - 1 do
      let p = ((si * t.ways) + wi) * 2 in
      if t.data.(p + 1) land s_pinned = 0 then begin
        t.data.(p) <- junk_tag si wi;
        t.data.(p + 1) <- (if dirty then s_dirty else 0)
      end
    done
  done

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  dirty_evictions : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    dirty_evictions = t.dirty_evictions;
  }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.dirty_evictions <- 0

let pp_stats ppf s =
  Fmt.pf ppf "hits=%d misses=%d evictions=%d dirty=%d" s.hits s.misses
    s.evictions s.dirty_evictions
