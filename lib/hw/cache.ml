(* Set-associative cache with way lockdown and a choice of replacement
   policy.

   The ARM1136's caches replace round-robin (or pseudo-random); true LRU
   is the deterministic stand-in the rest of the simulator defaults to.
   Both are supported — and both are soundly over-approximated by the
   paper's one-way direct-mapped analysis model, because a model hit means
   no other access touched the set in between, so no replacement policy
   can have evicted the line.

   Lockdown models the ARM1136 cache-pinning facility of Section 4: the
   first [locked_ways] ways of every set are reserved for pinned lines,
   and the replacement policy only ever considers the remaining ways. *)

type policy = Lru | Round_robin

type line = {
  mutable tag : int;  (* -1 = invalid *)
  mutable dirty : bool;
  mutable pinned : bool;
  mutable lru : int;  (* higher = more recently used *)
}

type t = {
  line_size : int;
  sets : int;
  ways : int;
  policy : policy;
  mutable locked_ways : int;
  data : line array array;  (* [set].(way) *)
  rr_next : int array;  (* round-robin victim cursor, per set *)
  mutable clock : int;  (* monotonic counter driving LRU ordering *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
  mutable on_pin_evict : (int -> unit) option;
      (* observation hook: a pinned line was evicted, or installing a pin
         displaced a resident line (argument: the victim's line address) *)
}

type outcome = Hit | Miss of { evicted_dirty : bool }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(policy = Lru) ~line_size ~sets ~ways () =
  assert (is_pow2 line_size && is_pow2 sets && ways > 0);
  let fresh_line () = { tag = -1; dirty = false; pinned = false; lru = 0 } in
  {
    line_size;
    sets;
    ways;
    policy;
    locked_ways = 0;
    data = Array.init sets (fun _ -> Array.init ways (fun _ -> fresh_line ()));
    rr_next = Array.make sets 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    dirty_evictions = 0;
    on_pin_evict = None;
  }

let line_size t = t.line_size
let sets t = t.sets
let ways t = t.ways
let size_bytes t = t.line_size * t.sets * t.ways

let lock_ways t k =
  if k < 0 || k >= t.ways then
    invalid_arg "Cache.lock_ways: must leave at least one unlocked way";
  t.locked_ways <- k

let locked_ways t = t.locked_ways

let set_index t addr = addr / t.line_size mod t.sets
let tag_of t addr = addr / t.line_size / t.sets
let line_addr t addr = addr / t.line_size * t.line_size
let addr_of t ~tag ~set = ((tag * t.sets) + set) * t.line_size

let set_pin_evict_hook t f = t.on_pin_evict <- f

let notify_pin_evict t si line =
  match t.on_pin_evict with
  | Some f when line.tag >= 0 -> f (addr_of t ~tag:line.tag ~set:si)
  | _ -> ()

let touch t line =
  t.clock <- t.clock + 1;
  line.lru <- t.clock

let find_way set tag =
  let n = Array.length set in
  let rec loop i =
    if i >= n then None
    else if set.(i).tag = tag then Some set.(i)
    else loop (i + 1)
  in
  loop 0

(* Victim selection among the unlocked ways: least-recently-used (invalid
   lines carry lru = 0 and lose ties), or the ARM1136's rotating cursor. *)
let victim t si set =
  match t.policy with
  | Lru ->
      let best = ref t.locked_ways in
      for way = t.locked_ways + 1 to t.ways - 1 do
        if set.(way).lru < set.(!best).lru then best := way
      done;
      set.(!best)
  | Round_robin ->
      let unlocked = t.ways - t.locked_ways in
      let way = t.locked_ways + (t.rr_next.(si) mod unlocked) in
      t.rr_next.(si) <- (t.rr_next.(si) + 1) mod unlocked;
      set.(way)

let access t ~write addr =
  let si = set_index t addr in
  let set = t.data.(si) in
  let tag = tag_of t addr in
  match find_way set tag with
  | Some line ->
      t.hits <- t.hits + 1;
      if write then line.dirty <- true;
      if not line.pinned then touch t line;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      if t.locked_ways >= t.ways then Miss { evicted_dirty = false }
      else begin
        let line = victim t si set in
        let evicted_dirty = line.tag >= 0 && line.dirty in
        if line.tag >= 0 then begin
          t.evictions <- t.evictions + 1;
          if line.dirty then t.dirty_evictions <- t.dirty_evictions + 1
        end;
        (* A pinned line living in an unlocked way offers no protection:
           losing it here is exactly the event pinning diagnostics want. *)
        if line.pinned then notify_pin_evict t si line;
        line.tag <- tag;
        line.dirty <- write;
        line.pinned <- false;
        touch t line;
        Miss { evicted_dirty }
      end

let probe t addr = find_way t.data.(set_index t addr) (tag_of t addr) <> None

let pin t addr =
  if t.locked_ways = 0 then false
  else begin
    let set = t.data.(set_index t addr) in
    let tag = tag_of t addr in
    match find_way set tag with
    | Some line ->
        line.pinned <- true;
        true
    | None ->
        (* Install in the first free locked way of the set, if any. *)
        let rec place way =
          if way >= t.locked_ways then false
          else if set.(way).tag = -1 || not set.(way).pinned then begin
            notify_pin_evict t (set_index t addr) set.(way);
            set.(way).tag <- tag;
            set.(way).dirty <- false;
            set.(way).pinned <- true;
            touch t set.(way);
            true
          end
          else place (way + 1)
        in
        place 0
  end

let pinned t addr =
  match find_way t.data.(set_index t addr) (tag_of t addr) with
  | Some line -> line.pinned
  | None -> false

let flush ?(keep_pinned = true) t =
  Array.iter
    (fun set ->
      Array.iter
        (fun line ->
          if not (keep_pinned && line.pinned) then begin
            line.tag <- -1;
            line.dirty <- false;
            line.pinned <- false;
            line.lru <- 0
          end)
        set)
    t.data

(* Fill every non-locked way of every set with dirty junk lines whose tags
   cannot collide with real addresses (tags beyond the address space).  Used
   to create the cold, polluted cache state of the paper's worst-case
   measurement runs (Section 5.4). *)
let pollute ?(dirty = true) t ~seed =
  let junk_tag set way = max_int / 2 + (set * t.ways) + way + (seed land 0xffff) in
  Array.iteri
    (fun si set ->
      Array.iteri
        (fun wi line ->
          if not line.pinned then begin
            line.tag <- junk_tag si wi;
            line.dirty <- dirty;
            line.lru <- 0
          end)
        set)
    t.data

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  dirty_evictions : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    dirty_evictions = t.dirty_evictions;
  }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.dirty_evictions <- 0

let pp_stats ppf s =
  Fmt.pf ppf "hits=%d misses=%d evictions=%d dirty=%d" s.hits s.misses
    s.evictions s.dirty_evictions
