(* Cycle accounting for simulated kernel execution.

   The kernel model charges its work through this interface: straight-line
   instruction execution (with instruction fetches through the I-cache),
   data loads/stores (through the D-cache) and branches.  The accumulated
   cycle counter plays the role of the ARM1136 performance-monitoring-unit
   cycle counter used for the paper's measurements. *)

type counters = {
  instructions : int;
  loads : int;
  stores : int;
  branches : int;
  cycles : int;
}

type access_kind = Fetch | Load | Store

type t = {
  machine : Machine.t;
  l1_hit : int;  (* cached Config.l1_hit_cycles: avoids re-reading the
                    config record on every load/store *)
  mutable cycles : int;
  mutable stall : int;
      (* cycles spent in the memory hierarchy (fetch/load/store latency
         beyond the 1-cycle issue), a subset of [cycles] *)
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable tracer : (access_kind -> int -> unit) option;
      (* observation hook used to derive cache-pinning candidates from
         execution traces *)
  mutable events : Obs.Trace.t option;
      (* structured event trace; emission charges nothing *)
}

let create config =
  {
    machine = Machine.create config;
    l1_hit = config.Config.l1_hit_cycles;
    cycles = 0;
    stall = 0;
    instructions = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    tracer = None;
    events = None;
  }

let of_machine machine =
  {
    machine;
    l1_hit = (Machine.config machine).Config.l1_hit_cycles;
    cycles = 0;
    stall = 0;
    instructions = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    tracer = None;
    events = None;
  }

let set_tracer t f = t.tracer <- Some f
let clear_tracer t = t.tracer <- None

let trace t kind addr =
  match t.tracer with None -> () | Some f -> f kind addr

(* --- structured event tracing (Obs.Trace) --- *)

let emit t kind =
  match t.events with
  | None -> ()
  | Some buf -> Obs.Trace.emit buf ~at:t.cycles ~stall:t.stall kind

let set_trace_buffer t buf =
  t.events <- Some buf;
  Machine.set_pin_evict_hook t.machine
    (Some (fun cache addr -> emit t (Obs.Trace.Pin_evict { cache; addr })))

let clear_trace_buffer t =
  t.events <- None;
  Machine.set_pin_evict_hook t.machine None

let trace_buffer t = t.events
let tracing t = match t.events with Some _ -> true | None -> false

let machine t = t.machine
let config t = Machine.config t.machine
let cycles t = t.cycles

let tick t n =
  assert (n >= 0);
  t.cycles <- t.cycles + n

(* Execute [count] single-cycle instructions fetched sequentially starting
   at code address [base].  Fetch stalls are charged per I-cache line: the
   first access to a line misses, the remaining instructions on it hit. *)
let exec t ~base ~count =
  assert (count >= 0);
  t.instructions <- t.instructions + count;
  t.cycles <- t.cycles + count;
  match t.tracer with
  | None ->
      (* Untraced hot path: charge the whole run in one pass over the
         I-cache lines instead of one probe per instruction. *)
      let lat = Machine.fetch_run t.machine ~base ~count in
      t.cycles <- t.cycles + lat;
      t.stall <- t.stall + lat
  | Some f ->
      for i = 0 to count - 1 do
        f Fetch (base + (4 * i));
        let lat = Machine.fetch t.machine (base + (4 * i)) in
        t.cycles <- t.cycles + lat;
        t.stall <- t.stall + lat
      done

let load t addr =
  t.loads <- t.loads + 1;
  trace t Load addr;
  let lat = Machine.read t.machine addr in
  t.cycles <- t.cycles + lat;
  (* The L1-hit cost is the pipeline's load-use cost, not a stall. *)
  t.stall <- t.stall + max 0 (lat - t.l1_hit)

let store t addr =
  t.stores <- t.stores + 1;
  trace t Store addr;
  let lat = Machine.write t.machine addr in
  t.cycles <- t.cycles + lat;
  t.stall <- t.stall + max 0 (lat - t.l1_hit)

let branch t ~pc ~taken =
  t.branches <- t.branches + 1;
  t.cycles <- t.cycles + Machine.branch t.machine ~pc ~taken

let counters t =
  {
    instructions = t.instructions;
    loads = t.loads;
    stores = t.stores;
    branches = t.branches;
    cycles = t.cycles;
  }

let stall_cycles t = t.stall

let reset t =
  t.cycles <- 0;
  t.stall <- 0;
  t.instructions <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.branches <- 0

let pp_counters ppf (c : counters) =
  Fmt.pf ppf "instrs=%d loads=%d stores=%d branches=%d cycles=%d"
    c.instructions c.loads c.stores c.branches c.cycles
