(** Cycle accounting for simulated kernel execution.

    The kernel model charges all of its work through this interface; the
    accumulated cycle count stands in for the ARM1136 cycle counter used in
    the paper's measurements. *)

type t

type counters = {
  instructions : int;
  loads : int;
  stores : int;
  branches : int;
  cycles : int;
}

val create : Config.t -> t
val of_machine : Machine.t -> t
val machine : t -> Machine.t
val config : t -> Config.t

val cycles : t -> int
(** Cycles accumulated so far. *)

val tick : t -> int -> unit
(** Charge a raw number of cycles (e.g. fixed exception-entry microcode). *)

val exec : t -> base:int -> count:int -> unit
(** Execute [count] single-cycle instructions fetched sequentially from code
    address [base], charging I-cache fetch stalls. *)

val load : t -> int -> unit
val store : t -> int -> unit
val branch : t -> pc:int -> taken:bool -> unit

type access_kind = Fetch | Load | Store

val set_tracer : t -> (access_kind -> int -> unit) -> unit
(** Observe every access (before it hits the caches); used to derive
    cache-pinning candidates from execution traces (Section 4). *)

val clear_tracer : t -> unit

val stall_cycles : t -> int
(** Cycles spent in the memory hierarchy so far (a subset of {!cycles}):
    fetch stalls plus load/store latency beyond the L1-hit cost. *)

val set_trace_buffer : t -> Obs.Trace.t -> unit
(** Attach a structured event trace.  Every event is stamped with the
    simulated cycle and stall counters; emission charges nothing, so the
    cycle count of a traced run is identical to an untraced one.  Also
    routes cache pin-eviction observations into the buffer. *)

val clear_trace_buffer : t -> unit
val trace_buffer : t -> Obs.Trace.t option

val tracing : t -> bool
(** A trace buffer is attached.  Emission sites on hot paths check this
    before constructing the event, so tracing costs nothing when off. *)

val emit : t -> Obs.Trace.kind -> unit
(** Emit one event into the attached buffer (no-op when none). *)

val counters : t -> counters
val reset : t -> unit
val pp_counters : counters Fmt.t
