(* Memory hierarchy and branch costs for the simulated platform.

   Access costs (in cycles):
   - L1 hit: [l1_hit_cycles]
   - L1 miss, L2 hit (L2 enabled): [l2_hit_cycles]
   - L1 miss, L2 miss or disabled: external memory latency (60 cycles with
     the L2 off, 96 with it on, matching the KZM board in Section 5.1)
   - a dirty eviction at either level adds a write-back cost.
   Branches cost a constant [branch_cost_static] cycles with the predictor
   disabled, otherwise [branch_cost_predicted] / [branch_cost_mispredicted]. *)

type t = {
  config : Config.t;
  icache : Cache.t;
  dcache : Cache.t;
  l2 : Cache.t option;
  bpred : Branch_predictor.t;
  mutable last_run_base : int;
      (* The immediately preceding {!fetch_run}, when nothing else has
         touched I-stream state since (-1 = none): repeating it is
         guaranteed all-hits and replayed without probing. *)
  mutable last_run_count : int;
}

let create (config : Config.t) =
  let policy =
    match config.Config.replacement with
    | Config.Lru -> Cache.Lru
    | Config.Round_robin -> Cache.Round_robin
  in
  let l1 () =
    Cache.create ~policy ~line_size:config.l1_line ~sets:config.l1_sets
      ~ways:config.l1_ways ()
  in
  let icache = l1 () and dcache = l1 () in
  Cache.lock_ways icache config.locked_ways_i;
  Cache.lock_ways dcache config.locked_ways_d;
  let l2 =
    if config.l2_enabled then
      Some
        (Cache.create ~policy ~line_size:config.l2_line ~sets:config.l2_sets
           ~ways:config.l2_ways ())
    else None
  in
  {
    config;
    icache;
    dcache;
    l2;
    bpred = Branch_predictor.create ();
    last_run_base = -1;
    last_run_count = 0;
  }

let config t = t.config
let icache t = t.icache
let dcache t = t.dcache
let l2 t = t.l2

let mem_latency t = Config.mem_cycles t.config
let writeback_cost t = Config.writeback_cycles t.config

(* Cost of an access that missed in L1, possibly serviced by the L2.
   Addresses inside the L2-locked range are always resident there
   (Section 8), so they cost an L2 hit and touch no L2 state. *)
let below_l1 t ~write addr =
  match t.l2 with
  | None -> mem_latency t
  | Some _ when Config.l2_locked t.config addr -> t.config.l2_hit_cycles
  | Some l2 ->
      let e = Cache.access_enc l2 ~write addr in
      if e = 0 then t.config.l2_hit_cycles
      else mem_latency t + if e = 2 then writeback_cost t else 0

let data_access t ~write addr =
  let e = Cache.access_enc t.dcache ~write addr in
  if e = 0 then t.config.l1_hit_cycles
  else
    (* A dirty L1 eviction writes back to the L2 when one exists (the
       write is absorbed by the L2 and its buffers); only without an L2
       does it pay the memory-latency write-back. *)
    below_l1 t ~write addr
    + if e = 2 && t.l2 = None then writeback_cost t else 0

let read t addr = data_access t ~write:false addr
let write t addr = data_access t ~write:true addr

let fetch t addr =
  t.last_run_base <- -1;
  let e = Cache.access_enc t.icache ~write:false addr in
  if e = 0 then 0 (* fetch overlaps with execution on a hit *)
  else
    below_l1 t ~write:false addr
    + if e = 2 && t.l2 = None then writeback_cost t else 0

(* Stall cycles for [count] sequential 4-byte instruction fetches starting
   at [base], equivalent to summing [fetch] over every address but probing
   the I-cache only once per line.  After the first access to a line (hit
   or miss — a miss always installs, since lockdown leaves at least one
   unlocked way), the remaining fetches on that line are guaranteed hits
   with zero stall, and re-touching the line the previous fetch just made
   most-recently-used cannot change any future replacement decision; they
   are therefore accounted in bulk via {!Cache.note_seq_hits}.

   The same argument covers replaying the run as a whole: if this run is
   identical to the immediately preceding one and nothing else touched
   I-stream state in between, every line is still resident (a hit kept
   it, a miss installed it) and re-touching them in the same order leaves
   the relative LRU order of every set unchanged — so the repeat is
   accounted as [count] hits with zero stall and no probes.  Data
   accesses never touch the I-cache, so polling loops (a preemption-point
   check fetching the same region between loads) replay this way for the
   bulk of the soak simulator's fetch work. *)
let fetch_run t ~base ~count =
  if count <= 0 then 0
  else if base = t.last_run_base && count = t.last_run_count then begin
    Cache.note_seq_hits t.icache count;
    0
  end
  else begin
    let line = t.config.Config.l1_line in
    let total = ref 0 in
    let i = ref 0 in
    while !i < count do
      let addr = base + (4 * !i) in
      let left_on_line = (line - (addr land (line - 1))) / 4 in
      let n = min (count - !i) (max 1 left_on_line) in
      (* not [fetch]: it must not clear the replay memo set below *)
      let e = Cache.access_enc t.icache ~write:false addr in
      if e <> 0 then
        total :=
          !total + below_l1 t ~write:false addr
          + if e = 2 && t.l2 = None then writeback_cost t else 0;
      if n > 1 then Cache.note_seq_hits t.icache (n - 1);
      i := !i + n
    done;
    t.last_run_base <- base;
    t.last_run_count <- count;
    !total
  end

let branch t ~pc ~taken =
  if not t.config.branch_predictor then t.config.branch_cost_static
  else if Branch_predictor.predict_and_update t.bpred ~pc ~taken then
    t.config.branch_cost_predicted
  else t.config.branch_cost_mispredicted

let pin_icache t addr =
  t.last_run_base <- -1;
  Cache.pin t.icache addr
let pin_dcache t addr = Cache.pin t.dcache addr

(* Route pin-eviction observations from both L1 caches through one
   labelled callback (the {!Cpu} module points this at its trace buffer). *)
let set_pin_evict_hook t hook =
  match hook with
  | None ->
      Cache.set_pin_evict_hook t.icache None;
      Cache.set_pin_evict_hook t.dcache None
  | Some f ->
      Cache.set_pin_evict_hook t.icache (Some (fun addr -> f "icache" addr));
      Cache.set_pin_evict_hook t.dcache (Some (fun addr -> f "dcache" addr))

let pollute t ~seed =
  t.last_run_base <- -1;
  Cache.pollute t.icache ~seed;
  Cache.pollute t.dcache ~seed:(seed + 1);
  (* The L2's junk is clean: its write-back traffic is not part of the
     latency the measured path pays on real hardware (write buffers). *)
  Option.iter (fun l2 -> Cache.pollute ~dirty:false l2 ~seed:(seed + 2)) t.l2;
  Branch_predictor.reset t.bpred

let flush t =
  t.last_run_base <- -1;
  Cache.flush t.icache;
  Cache.flush t.dcache;
  Option.iter Cache.flush t.l2;
  Branch_predictor.reset t.bpred
