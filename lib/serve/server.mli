(** The long-lived analysis server.

    Protocol: newline-delimited JSON — one {!Query} wire request per
    line in, one envelope line out, in request order.  Blank lines are
    ignored.  A line that is not valid JSON, or is JSON but not a valid
    request, gets an ["error"]-status envelope (echoing the request's
    ["id"] when one could be extracted) and the connection keeps
    serving.

    All queries execute under one process-wide mutex: the analysis
    caches, the disk cache and the Domain pool are shared state, and an
    analysis query saturates the pool anyway — concurrency buys request
    pipelining, not parallel solves.  Per-query metrics land under
    [serve.*]: the [serve.queries] and [serve.malformed] counters and
    the [serve.latency_s] histogram. *)

val serve_channels : in_channel -> out_channel -> bool
(** Serve one connection until EOF.  Returns [true] iff every
    non-blank line parsed as a well-formed request ([fail]-status
    results are still well-formed; only malformed input clears it). *)

val serve_stdio : unit -> int
(** Serve stdin/stdout until EOF; the suggested process exit code —
    [0] when every query was well-formed, [1] otherwise. *)

val serve_socket : string -> unit
(** Bind a Unix-domain socket at the given path (replacing any stale
    socket file) and serve each accepted connection on its own thread,
    forever.  Queries from concurrent connections are serialised by the
    execution mutex. *)
