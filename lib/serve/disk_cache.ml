(* On-disk content-addressed analysis cache (see disk_cache.mli). *)

let format_version = 1
let magic = "sel4rt-cache"
let suffix = ".an"

let hits = Obs.Metrics.counter "serve.cache.hits"
let misses = Obs.Metrics.counter "serve.cache.misses"
let stores = Obs.Metrics.counter "serve.cache.stores"
let errors = Obs.Metrics.counter "serve.cache.errors"
let evictions = Obs.Metrics.counter "serve.cache.evictions"
let bytes_gauge = Obs.Metrics.gauge "serve.cache.bytes"

type stats = {
  dc_hits : int;
  dc_misses : int;
  dc_stores : int;
  dc_errors : int;
  dc_evictions : int;
}

let stats () =
  {
    dc_hits = Obs.Metrics.value hits;
    dc_misses = Obs.Metrics.value misses;
    dc_stores = Obs.Metrics.value stores;
    dc_errors = Obs.Metrics.value errors;
    dc_evictions = Obs.Metrics.value evictions;
  }

let the_dir =
  ref
    (match Sys.getenv_opt "SEL4RT_CACHE_DIR" with
    | Some d when String.trim d <> "" -> d
    | _ -> "_cache")

let dir () = !the_dir
let set_dir d = the_dir := d

let max_bytes () =
  match
    Option.bind
      (Sys.getenv_opt "SEL4RT_CACHE_MAX_BYTES")
      (fun s -> int_of_string_opt (String.trim s))
  with
  | Some n when n > 0 -> n
  | _ -> 256 * 1024 * 1024

let path_of_key key = Filename.concat !the_dir (Digest.to_hex (Digest.string key) ^ suffix)

(* Entries only; tmp files and anything else in the directory are not
   the cache's to manage (beyond the eviction of its own entries). *)
let entries () =
  match Sys.readdir !the_dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n suffix)
      |> List.map (fun n -> Filename.concat !the_dir n)

(* LRU eviction by mtime.  Hits touch their entry, so mtime order is
   recency-of-use order across processes sharing the directory. *)
let evict_to_cap () =
  let cap = max_bytes () in
  let sized =
    List.filter_map
      (fun p ->
        match Unix.stat p with
        | { Unix.st_size; st_mtime; _ } -> Some (p, st_size, st_mtime)
        | exception Unix.Unix_error _ -> None)
      (entries ())
  in
  let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 sized in
  Obs.Metrics.set_gauge bytes_gauge (float_of_int total);
  if total > cap then begin
    let by_age =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) sized
    in
    let remaining = ref total in
    List.iter
      (fun (p, sz, _) ->
        if !remaining > cap then begin
          (try Sys.remove p with Sys_error _ -> ());
          remaining := !remaining - sz;
          Obs.Metrics.incr evictions
        end)
      by_age;
    Obs.Metrics.set_gauge bytes_gauge (float_of_int !remaining)
  end

let read_exactly ic len =
  let b = Bytes.create len in
  really_input ic b 0 len;
  Bytes.unsafe_to_string b

let load ?(version = format_version) ~key () =
  let path = path_of_key key in
  match open_in_bin path with
  | exception Sys_error _ ->
      Obs.Metrics.incr misses;
      None
  | ic -> (
      let parse () =
        let header = input_line ic in
        match String.split_on_char ' ' header with
        | [ m; v; klen; blen; bmd5 ]
          when m = magic && int_of_string v = version ->
            let klen = int_of_string klen and blen = int_of_string blen in
            let stored_key = read_exactly ic klen in
            if stored_key <> key then None
            else begin
              let blob = read_exactly ic blen in
              if Digest.to_hex (Digest.string blob) <> bmd5 then
                failwith "blob digest mismatch"
              else
                Some (Marshal.from_string blob 0 : Wcet.Ipet.persisted)
            end
        | [ m; _; _; _; _ ] when m = magic ->
            (* A different format version: stale by definition, silently
               invalidated (counted as a miss, not an error). *)
            None
        | _ -> failwith "bad header"
      in
      match parse () with
      | Some v ->
          close_in_noerr ic;
          Obs.Metrics.incr hits;
          (* Touch for LRU: best-effort, shared directories may deny it. *)
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
          Some v
      | None ->
          close_in_noerr ic;
          Obs.Metrics.incr misses;
          None
      | exception _ ->
          (* Truncated, corrupted or unreadable: drop the entry so the
             recompute's store replaces it, and count the incident. *)
          close_in_noerr ic;
          Obs.Metrics.incr errors;
          Obs.Metrics.incr misses;
          (try Sys.remove path with Sys_error _ -> ());
          None)

let store ?(version = format_version) ~key payload =
  try
    if not (Sys.file_exists !the_dir) then Unix.mkdir !the_dir 0o755;
    let blob = Marshal.to_string (payload : Wcet.Ipet.persisted) [] in
    let tmp =
      Filename.temp_file ~temp_dir:!the_dir "tmp-" suffix
    in
    let oc = open_out_bin tmp in
    (try
       Printf.fprintf oc "%s %d %d %d %s\n" magic version (String.length key)
         (String.length blob)
         (Digest.to_hex (Digest.string blob));
       output_string oc key;
       output_string oc blob;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    (* Atomic on POSIX: readers see the old entry or the new one, never a
       torn write. *)
    Sys.rename tmp (path_of_key key);
    Obs.Metrics.incr stores;
    evict_to_cap ()
  with Sys_error _ | Unix.Unix_error _ ->
    (* A full or read-only filesystem degrades the cache, not the run. *)
    Obs.Metrics.incr errors

let clear () =
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (entries ());
  Obs.Metrics.set_gauge bytes_gauge 0.0

let disabled () =
  match Sys.getenv_opt "SEL4RT_NO_DISK_CACHE" with
  | Some s when String.trim s <> "" -> true
  | _ -> false

let install () =
  if not (disabled ()) then
    Sel4_rt.Analysis_cache.set_persist
      (Some
         {
           Sel4_rt.Analysis_cache.p_load = (fun key -> load ~key ());
           p_store = (fun key v -> store ~key v);
         })

let uninstall () = Sel4_rt.Analysis_cache.set_persist None
