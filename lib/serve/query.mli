(** The unified query API.

    One typed request variant covers every analysis the toolkit exposes
    machine-readably — WCET bounds, bound decomposition, the soak
    campaign, fault injection, the interference audit, the DPOR
    explorer, and the metrics registry.  [sel4rt]'s [--json] paths and
    the [serve] protocol are both thin clients of {!respond}: same
    request type, same payload bytes, same envelope.

    Wire form (one JSON object per request):

    {v
    { "query": "analyse" | "explain" | "metrics" | "sim" | "smp"
             | "inject" | "race" | "explore",
      "id": <optional string, echoed in the response envelope>,
      ...query-specific parameters... }
    v}

    [analyse]/[explain] take ["target"] (["kernel_entry"] — the full
    interrupt-response bound — or an entry point name; default
    ["kernel_entry"]), ["build"], ["l2"], ["pin"].  [sim] takes
    ["smoke"], ["seed"], ["entries"], ["scenarios"]; [smp] takes
    ["smoke"], ["seed"], ["entries"], ["cores"] (default 4),
    ["shielded"] and ["compare"] (run both affinity policies and gate
    on the shielded tail being strictly lower); [inject] takes
    ["smoke"], ["seed"], ["l2"]; [race] takes ["smoke"]; [explore]
    takes ["smoke"], ["depth"].  Booleans default to [false] except
    campaign ["smoke"] which defaults to [true] (a server should not
    run multi-minute campaigns unless explicitly asked).

    Analyse payloads carry no wall-clock fields — a warm-cache bound is
    byte-identical to the cold one, which is what the CI warm-cache gate
    diffs.  The envelope's [elapsed_s] is the only timing. *)

type target = Kernel_entry | Entry of Sel4_rt.Kernel_model.entry_point

type request =
  | Analyse of { target : target; build : Sel4.Build.t; l2 : bool; pin : bool }
  | Explain of { target : target; build : Sel4.Build.t; l2 : bool; pin : bool }
  | Metrics
  | Sim of {
      smoke : bool;
      seed : int;
      entries : int option;
      scenarios : string list;
    }
  | Smp of {
      smoke : bool;
      seed : int;
      entries : int option;
      cores : int;
      shielded : bool;
      compare : bool;
    }
  | Inject of { smoke : bool; seed : int; l2 : bool }
  | Race of { smoke : bool }
  | Explore of { smoke : bool; depth : int option }

type outcome = { status : Envelope.status; payload : string }

val run : request -> outcome
(** Execute the request.  Never raises: an exception becomes an
    [Error]-status outcome with an [{"error": ...}] payload.  [Fail]
    means the command ran but its gate failed (an oracle violation, a
    latency over bound, a non-exact decomposition). *)

val respond : ?id:string -> request -> string * Envelope.status
(** {!run} wrapped in the one-line envelope (trailing newline included),
    with the wall-clock [elapsed_s] measured around the run.  The status
    is also returned so CLI clients can turn [Fail]/[Error] into a
    non-zero exit. *)

val of_json : Json.t -> (string option * request, string) result
(** Parse a wire request: [Ok (id, request)] or [Error message] for an
    unknown query kind, a bad parameter, or a non-object. *)

val target_name : target -> string
val target_of_string : string -> (target, string) result
val build_of_string : string -> (Sel4.Build.t, string) result
val build_name : Sel4.Build.t -> string
