(** Minimal JSON: a value type, a strict recursive-descent parser and a
    compact single-line printer.

    Exists so the serve protocol (newline-delimited JSON queries and
    responses) and the envelope tests need no external dependency.  The
    parser accepts the full JSON grammar (escapes, exponents, nested
    structures); object member order is preserved.  Numbers are [float]s,
    as in JavaScript — every integer this repository emits fits a double
    exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document.  Trailing whitespace is allowed, trailing
    garbage is an error; errors carry a character offset. *)

val to_compact : t -> string
(** Single-line rendering with no insignificant whitespace — safe for a
    newline-delimited protocol.  Integral numbers print without a decimal
    point; other floats with up to 17 significant digits (round-trip). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

(** Accessors; [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an object ([None] for missing fields and non-objects). *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
