(** The unified machine-readable envelope.

    Every JSON document this repository emits — serve responses, the
    [--json] output of [sel4rt analyse]/[explain]/[inject]/[race]/
    [explore]/[metrics], and [BENCH_wcet.json] — is one envelope object:

    {v
    { "schema_version": 1,
      "id": <echoed request id, when one was given>,
      "status": "ok" | "fail" | "error",
      "elapsed_s": <wall-clock seconds spent producing the payload>,
      "payload": <command-specific JSON> }
    v}

    [status] is ["ok"] when the command ran and its gate (if any) passed,
    ["fail"] when it ran but a gate failed (an inject/explore oracle, a
    sim latency bound, a non-exact decomposition), and ["error"] when the
    request itself was malformed or the command raised; an ["error"]
    payload is [{"error": <message>}].  [elapsed_s] is the only
    wall-clock-dependent field — payloads are deterministic for
    deterministic commands, which is what the warm-cache byte-identity
    gate checks. *)

type status = Ok | Fail | Error

val schema_version : int
(** 1. Bump when the envelope shape (not a payload) changes. *)

val status_to_string : status -> string
(** ["ok"], ["fail"], ["error"]. *)

val wrap :
  ?id:string ->
  ?compact:bool ->
  status:status ->
  elapsed_s:float ->
  payload:string ->
  unit ->
  string
(** Wrap a payload (which must already be valid JSON) in the envelope.
    With [compact:true] (default) the payload is re-emitted through
    {!Json.to_compact} so the whole envelope is one line, terminated by a
    newline — the serve protocol's framing; a payload that fails to parse
    is embedded as an error payload instead, never emitted broken.  With
    [compact:false] the payload text is embedded verbatim (multi-line
    documents such as [BENCH_wcet.json] keep their human-readable
    layout). *)

val error : ?id:string -> string -> string
(** [wrap] of an ["error"] envelope around [{"error": msg}]. *)

val speedup_field :
  domains:int ->
  engine_wall_s:float ->
  serial_fresh_wall_s:float ->
  string option
(** The rendered value of the bench report's ["speedup"] field, or [None]
    when [domains <= 1] — a single-domain run measures no parallelism, so
    the field is omitted from [BENCH_wcet.json] (a warning is still
    printed) instead of shipping a noise figure. *)
