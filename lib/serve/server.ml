(* The long-lived analysis server (see server.mli). *)

let queries = Obs.Metrics.counter "serve.queries"
let malformed = Obs.Metrics.counter "serve.malformed"
let latency = Obs.Metrics.histogram "serve.latency_s"

(* Requests parsed but not yet answered — across every connection. *)
let queue_depth = Obs.Metrics.gauge "serve.queue_depth"
let pending = Atomic.make 0

let enqueue () =
  Obs.Metrics.set_gauge queue_depth
    (float_of_int (Atomic.fetch_and_add pending 1 + 1))

let dequeue () =
  Obs.Metrics.set_gauge queue_depth
    (float_of_int (Atomic.fetch_and_add pending (-1) - 1))

(* One query executes at a time: the analysis caches, the disk cache and
   the Domain pool are process-wide, and a single analyse already
   saturates the pool.  Connections pipeline; solves serialise. *)
let exec_mutex = Mutex.create ()

let handle_line line =
  Obs.Metrics.incr queries;
  match Json.parse line with
  | Error msg ->
      Obs.Metrics.incr malformed;
      (Envelope.error (Fmt.str "invalid JSON: %s" msg), false)
  | Ok v -> (
      match Query.of_json v with
      | Error msg ->
          Obs.Metrics.incr malformed;
          let id = Option.bind (Json.member "id" v) Json.to_string_opt in
          (Envelope.error ?id msg, false)
      | Ok (id, req) ->
          enqueue ();
          let t0 = Obs.Metrics.now_s () in
          let response, _status =
            Fun.protect ~finally:dequeue (fun () ->
                Mutex.protect exec_mutex (fun () -> Query.respond ?id req))
          in
          Obs.Metrics.observe latency (Obs.Metrics.now_s () -. t0);
          (response, true))

let serve_channels ic oc =
  let all_well_formed = ref true in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let response, well_formed = handle_line line in
         if not well_formed then all_well_formed := false;
         output_string oc response;
         flush oc
       end
     done
   with End_of_file -> ());
  !all_well_formed

let serve_stdio () = if serve_channels stdin stdout then 0 else 1

let serve_socket path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let rec accept_loop () =
    let fd, _peer = Unix.accept sock in
    let (_ : Thread.t) =
      Thread.create
        (fun fd ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          let (_ : bool) = serve_channels ic oc in
          (* Closing the out channel closes the shared descriptor. *)
          close_out_noerr oc)
        fd
    in
    accept_loop ()
  in
  accept_loop ()
