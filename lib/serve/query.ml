(* The unified query API (see query.mli). *)

type target = Kernel_entry | Entry of Sel4_rt.Kernel_model.entry_point

type request =
  | Analyse of { target : target; build : Sel4.Build.t; l2 : bool; pin : bool }
  | Explain of { target : target; build : Sel4.Build.t; l2 : bool; pin : bool }
  | Metrics
  | Sim of {
      smoke : bool;
      seed : int;
      entries : int option;
      scenarios : string list;
    }
  | Smp of {
      smoke : bool;
      seed : int;
      entries : int option;
      cores : int;
      shielded : bool;
      compare : bool;
    }
  | Inject of { smoke : bool; seed : int; l2 : bool }
  | Race of { smoke : bool }
  | Explore of { smoke : bool; depth : int option }

type outcome = { status : Envelope.status; payload : string }

(* Wire tokens, so a response's [target] is itself a valid request
   [target] (Kernel_model.entry_name renders display names). *)
let target_name = function
  | Kernel_entry -> "kernel_entry"
  | Entry Sel4_rt.Kernel_model.Syscall -> "syscall"
  | Entry Sel4_rt.Kernel_model.Interrupt -> "interrupt"
  | Entry Sel4_rt.Kernel_model.Page_fault -> "fault"
  | Entry Sel4_rt.Kernel_model.Undefined_instruction -> "undefined"

let target_of_string = function
  | "kernel_entry" | "response" -> Result.Ok Kernel_entry
  | "syscall" -> Result.Ok (Entry Sel4_rt.Kernel_model.Syscall)
  | "interrupt" | "irq" -> Result.Ok (Entry Sel4_rt.Kernel_model.Interrupt)
  | "fault" | "pagefault" -> Result.Ok (Entry Sel4_rt.Kernel_model.Page_fault)
  | "undefined" | "undef" ->
      Result.Ok (Entry Sel4_rt.Kernel_model.Undefined_instruction)
  | s -> Result.Error (Fmt.str "unknown target %S" s)

let build_of_string = function
  | "improved" | "after" -> Result.Ok Sel4.Build.improved
  | "original" | "before" -> Result.Ok Sel4.Build.original
  | "benno" ->
      Result.Ok { Sel4.Build.improved with Sel4.Build.sched = Sel4.Build.Benno }
  | "lazy" ->
      Result.Ok { Sel4.Build.improved with Sel4.Build.sched = Sel4.Build.Lazy }
  | s -> Result.Error (Fmt.str "unknown build %S" s)

let build_name b =
  if b = Sel4.Build.improved then "improved"
  else if b = Sel4.Build.original then "original"
  else if b = { Sel4.Build.improved with Sel4.Build.sched = Sel4.Build.Benno }
  then "benno"
  else if b = { Sel4.Build.improved with Sel4.Build.sched = Sel4.Build.Lazy }
  then "lazy"
  else Fmt.str "%a" Sel4.Build.pp b

(* Same hardware/pinning derivation as the CLI flags. *)
let config_of ~l2 ~pin =
  let c = if l2 then Hw.Config.with_l2 else Hw.Config.default in
  if pin then Hw.Config.with_pinning c else c

let pins_of build ~pin =
  if not pin then Sel4_rt.Response_time.no_pins
  else begin
    let s = Sel4_rt.Pinning.select build in
    {
      Sel4_rt.Response_time.code = s.Sel4_rt.Pinning.code_lines;
      data = s.Sel4_rt.Pinning.data_lines;
    }
  end

let ctx_of ~build ~l2 ~pin =
  let config = config_of ~l2 ~pin in
  let pins = pins_of build ~pin in
  Sel4_rt.Analysis_ctx.make ~config ~pins ~build ()

(* Analyse payloads deliberately carry no wall-clock field: a disk-cache
   hit must produce byte-identical output to the cold solve it replays
   (the envelope's [elapsed_s] is the only timing).  [lp_solves] and
   [bb_nodes] are deterministic solver statistics, persisted with the
   result, so they survive the round trip unchanged. *)
let analyse_payload ~target ~build ~l2 ~pin =
  let ctx = ctx_of ~build ~l2 ~pin in
  let config = config_of ~l2 ~pin in
  let head =
    Fmt.str "{\"target\":\"%s\",\"build\":\"%s\",\"l2\":%b,\"pin\":%b"
      (target_name target) (build_name build) l2 pin
  in
  match target with
  | Kernel_entry ->
      let bound = Sel4_rt.Response_time.interrupt_response_bound ctx in
      Fmt.str "%s,\"wcet_cycles\":%d,\"wcet_us\":%.3f}" head bound
        (Hw.Config.cycles_to_us config bound)
  | Entry e ->
      let r = Sel4_rt.Response_time.computed ctx e in
      Fmt.str
        "%s,\"wcet_cycles\":%d,\"wcet_us\":%.3f,\"ilp\":{\"vars\":%d,\"constraints\":%d,\"bb_nodes\":%d,\"lp_solves\":%d}}"
        head r.Wcet.Ipet.wcet
        (Hw.Config.cycles_to_us config r.Wcet.Ipet.wcet)
        r.Wcet.Ipet.ilp_vars r.Wcet.Ipet.ilp_constraints r.Wcet.Ipet.bb_nodes
        r.Wcet.Ipet.lp_solves

let run_exn = function
  | Analyse { target; build; l2; pin } ->
      { status = Envelope.Ok; payload = analyse_payload ~target ~build ~l2 ~pin }
  | Explain { target; build; l2; pin } ->
      let ctx = ctx_of ~build ~l2 ~pin in
      let profile =
        match target with
        | Kernel_entry -> Sel4_rt.Response_time.interrupt_response_profile ctx
        | Entry e -> Sel4_rt.Response_time.profile ctx e
      in
      let status =
        if Obs.Bound_profile.exact profile then Envelope.Ok else Envelope.Fail
      in
      { status; payload = Obs.Bound_profile.to_json profile }
  | Metrics ->
      {
        status = Envelope.Ok;
        payload = Obs.Metrics.to_json (Obs.Metrics.snapshot ());
      }
  | Sim { smoke; seed; entries; scenarios } ->
      let only = match scenarios with [] -> None | l -> Some l in
      let report, _throughput =
        Sim.run_campaign_timed ~smoke ~seed ?entries ?only ()
      in
      let status = if report.Sim.rp_ok then Envelope.Ok else Envelope.Fail in
      (* [report_json], not [campaign_json]: the throughput splice is
         wall-clock and would break response determinism. *)
      { status; payload = Sim.report_json report }
  | Smp { smoke; seed; entries; cores; shielded; compare } ->
      if compare then begin
        let shielded_rep, spread_rep, cmp =
          Smp.Soak.run_compare ~seed ?entries ~smoke ~cores ()
        in
        let ok =
          shielded_rep.Smp.Soak.rp_ok && spread_rep.Smp.Soak.rp_ok
          && cmp.Smp.Soak.cmp_tail_lower
        in
        {
          status = (if ok then Envelope.Ok else Envelope.Fail);
          payload = Smp.Soak.comparison_json cmp;
        }
      end
      else begin
        let policy =
          if shielded then Smp.Topology.Shielded else Smp.Topology.Spread
        in
        let report = Smp.Soak.run ~seed ?entries ~smoke ~cores ~policy () in
        {
          status =
            (if report.Smp.Soak.rp_ok then Envelope.Ok else Envelope.Fail);
          payload = Smp.Soak.report_json report;
        }
      end
  | Inject { smoke; seed; l2 } ->
      let config = config_of ~l2 ~pin:false in
      let ctx = Sel4_rt.Analysis_ctx.make ~config () in
      let report = Inject.run_campaign ~smoke ~seed ctx in
      let status = if Inject.ok report then Envelope.Ok else Envelope.Fail in
      { status; payload = Inject.to_json report }
  | Race { smoke } ->
      let report = Race.audit ~smoke Sel4_rt.Analysis_ctx.default in
      let status =
        if Race.audit_ok report then Envelope.Ok else Envelope.Fail
      in
      { status; payload = Race.to_json report }
  | Explore { smoke; depth } ->
      let report = Explore.run ~smoke ?depth Sel4_rt.Analysis_ctx.default in
      let status = if Explore.ok report then Envelope.Ok else Envelope.Fail in
      { status; payload = Explore.to_json report }

let run req =
  match run_exn req with
  | outcome -> outcome
  | exception e ->
      {
        status = Envelope.Error;
        payload =
          Fmt.str "{\"error\":\"%s\"}" (Json.escape (Printexc.to_string e));
      }

let respond ?id req =
  let t0 = Unix.gettimeofday () in
  let { status; payload } = run req in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (Envelope.wrap ?id ~status ~elapsed_s ~payload (), status)

(* --- wire parsing --- *)

let ( let* ) = Result.bind

let of_json v =
  match v with
  | Json.Obj _ -> (
      let id = Option.bind (Json.member "id" v) Json.to_string_opt in
      let field name to_v kind default =
        match Json.member name v with
        | None -> Result.Ok default
        | Some j -> (
            match to_v j with
            | Some x -> Result.Ok x
            | None -> Result.Error (Fmt.str "%S must be %s" name kind))
      in
      let opt_field name to_v kind =
        field name (fun j -> Option.map Option.some (to_v j)) kind None
      in
      let bool_field name default =
        field name Json.to_bool_opt "a boolean" default
      in
      let int_field name default =
        field name Json.to_int_opt "an integer" default
      in
      let parsed name of_string default =
        let* s = field name Json.to_string_opt "a string" default in
        of_string s
      in
      let analysis_params () =
        let* target = parsed "target" target_of_string "kernel_entry" in
        let* build = parsed "build" build_of_string "improved" in
        let* l2 = bool_field "l2" false in
        let* pin = bool_field "pin" false in
        Result.Ok (target, build, l2, pin)
      in
      let* kind =
        match Json.member "query" v with
        | None -> Result.Error "missing \"query\""
        | Some j -> (
            match Json.to_string_opt j with
            | Some s -> Result.Ok s
            | None -> Result.Error "\"query\" must be a string")
      in
      let* req =
        match kind with
        | "analyse" | "analyze" ->
            let* target, build, l2, pin = analysis_params () in
            Result.Ok (Analyse { target; build; l2; pin })
        | "explain" ->
            let* target, build, l2, pin = analysis_params () in
            Result.Ok (Explain { target; build; l2; pin })
        | "metrics" -> Result.Ok Metrics
        | "sim" ->
            let* smoke = bool_field "smoke" true in
            let* seed = int_field "seed" 42 in
            let* entries = opt_field "entries" Json.to_int_opt "an integer" in
            let* scenarios =
              let* items =
                field "scenarios" Json.to_list_opt "an array" []
              in
              List.fold_left
                (fun acc j ->
                  let* acc = acc in
                  match Json.to_string_opt j with
                  | Some s -> Result.Ok (s :: acc)
                  | None ->
                      Result.Error "\"scenarios\" must be an array of strings")
                (Result.Ok []) items
              |> Result.map List.rev
            in
            Result.Ok (Sim { smoke; seed; entries; scenarios })
        | "smp" ->
            let* smoke = bool_field "smoke" true in
            let* seed = int_field "seed" 42 in
            let* entries = opt_field "entries" Json.to_int_opt "an integer" in
            let* cores = int_field "cores" 4 in
            let* shielded = bool_field "shielded" false in
            let* compare = bool_field "compare" false in
            if cores < 1 then Result.Error "\"cores\" must be >= 1"
            else
              Result.Ok (Smp { smoke; seed; entries; cores; shielded; compare })
        | "inject" ->
            let* smoke = bool_field "smoke" true in
            let* seed = int_field "seed" 42 in
            let* l2 = bool_field "l2" false in
            Result.Ok (Inject { smoke; seed; l2 })
        | "race" ->
            let* smoke = bool_field "smoke" true in
            Result.Ok (Race { smoke })
        | "explore" ->
            let* smoke = bool_field "smoke" true in
            let* depth = opt_field "depth" Json.to_int_opt "an integer" in
            Result.Ok (Explore { smoke; depth })
        | s -> Result.Error (Fmt.str "unknown query %S" s)
      in
      Result.Ok (id, req))
  | _ -> Result.Error "request must be a JSON object"
