(* Minimal JSON parser and compact printer (see json.mli). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Fmt.str "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8; surrogate pairs are not
                  recombined (the protocol carries ASCII identifiers). *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Fmt.str "bad escape \\%C" c));
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let parse_member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ parse_member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | Some c -> fail (Fmt.str "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Fmt.str "%s at offset %d" msg pos)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Fmt.str "%.0f" f
  else Fmt.str "%.17g" f

let to_compact v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (num_to_string f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          items;
        Buffer.add_char b ']'
    | Obj members ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go x)
          members;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member k = function Obj m -> List.assoc_opt k m | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None
