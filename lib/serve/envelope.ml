(* The unified response envelope (see envelope.mli). *)

type status = Ok | Fail | Error

let schema_version = 1

let status_to_string = function
  | Ok -> "ok"
  | Fail -> "fail"
  | Error -> "error"

let wrap ?id ?(compact = true) ~status ~elapsed_s ~payload () =
  let status, payload =
    if not compact then (status, payload)
    else
      match Json.parse payload with
      | (exception _) | Error _ ->
          (* Never emit a broken document: a payload that is not valid
             JSON becomes an error envelope carrying the head of the
             offending text. *)
          let head =
            if String.length payload > 120 then String.sub payload 0 120
            else payload
          in
          ( Error,
            Fmt.str "{\"error\":\"invalid payload JSON: %s\"}"
              (Json.escape head) )
      | Result.Ok v -> (status, Json.to_compact v)
  in
  let b = Buffer.create (String.length payload + 128) in
  Buffer.add_string b (Fmt.str "{\"schema_version\": %d" schema_version);
  (match id with
  | Some id -> Buffer.add_string b (Fmt.str ", \"id\": \"%s\"" (Json.escape id))
  | None -> ());
  Buffer.add_string b
    (Fmt.str ", \"status\": \"%s\", \"elapsed_s\": %.6f, \"payload\": "
       (status_to_string status)
       elapsed_s);
  Buffer.add_string b payload;
  Buffer.add_string b "}\n";
  Buffer.contents b

let error ?id msg =
  wrap ?id ~status:Error ~elapsed_s:0.0
    ~payload:(Fmt.str "{\"error\":\"%s\"}" (Json.escape msg))
    ()

(* The bench report's "speedup" figure.  With a single domain the
   parallel engine and the serial baseline measure the same thing, and
   the ratio is pure noise that once read as a real regression ("speedup
   0.9x!") — so the field is omitted entirely rather than emitted with a
   misleading value.  Centralised here (next to the other report-shape
   decisions) so the rule is testable without running a bench. *)
let speedup_field ~domains ~engine_wall_s ~serial_fresh_wall_s =
  if domains <= 1 then None
  else
    Some
      (Fmt.str "%.6f"
         (if engine_wall_s > 0.0 then serial_fresh_wall_s /. engine_wall_s
          else 0.0))
