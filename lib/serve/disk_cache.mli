(** On-disk content-addressed analysis cache.

    One file per analysis result under {!dir} (default [_cache/],
    overridable with [SEL4RT_CACHE_DIR] or {!set_dir}), named by the MD5
    of the canonical key text that {!Sel4_rt.Analysis_cache} renders for
    the full analysis input (build, entry, params, hardware config, pins,
    constraint variant, forced counts).  Entry layout:

    {v
    sel4rt-cache <format version> <key length> <blob length> <blob md5>\n
    <canonical key text>
    <Marshal blob of Wcet.Ipet.persisted>
    v}

    Writes go to a unique temporary file in the same directory followed
    by an atomic [rename], so concurrent writers (domains or processes)
    can race on one key and readers still only ever observe complete
    entries.  Reads verify the format version, the full key text (hash
    collisions degrade to misses, never wrong results) and the blob
    digest; any mismatch, truncation or unreadable file counts as a miss
    — corruption can cost a recompute, never a crash or a wrong bound.

    The store is size-capped ([SEL4RT_CACHE_MAX_BYTES], default 256 MiB):
    after a write that pushes the total over the cap, the
    least-recently-used entries (by mtime; hits touch their entry) are
    evicted until the store fits.

    Counters land in the metrics registry under [serve.cache.*]:
    [hits], [misses], [stores], [errors], [evictions], and the
    [serve.cache.bytes] gauge. *)

val dir : unit -> string
val set_dir : string -> unit

val install : unit -> unit
(** Route {!Sel4_rt.Analysis_cache} misses through this store
    ({!Sel4_rt.Analysis_cache.set_persist}).  No-op when
    [SEL4RT_NO_DISK_CACHE] is set to a non-empty value.  The directory is
    created lazily on the first store. *)

val uninstall : unit -> unit

val load : ?version:int -> key:string -> unit -> Wcet.Ipet.persisted option
(** [None] on miss, version mismatch, key mismatch or corruption
    (corrupt entries are deleted).  [version] defaults to the current
    format version; tests override it to exercise invalidation. *)

val store : ?version:int -> key:string -> Wcet.Ipet.persisted -> unit
(** Atomic write-and-rename, then eviction down to the size cap.  I/O
    errors are counted and swallowed — a read-only or full filesystem
    degrades the cache, never the analysis. *)

val clear : unit -> unit
(** Remove every cache entry (other files are left alone). *)

type stats = {
  dc_hits : int;
  dc_misses : int;
  dc_stores : int;
  dc_errors : int;
  dc_evictions : int;
}

val stats : unit -> stats
(** Current [serve.cache.*] counter values. *)
