(** Process-wide metrics registry: counters, gauges and log-bucketed
    histograms with a single snapshot type.

    Instruments are interned by name (requesting the same name twice
    returns the same instrument) and safe to update from any domain.
    Histograms are base-2 log-scaled: an observation [v > 0] lands in
    bucket [ceil (log2 v)], so the bucket with exponent [k] covers
    [(2^(k-1), 2^k]].  Timing spans observe seconds. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val value : counter -> int
val set_counter : counter -> int -> unit

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

val histogram : string -> histogram
val observe : histogram -> float -> unit

val observe_n : histogram -> n:int -> float -> unit
(** Record [n] observations of the same value in one locked update (the
    bulk path for callers holding a value -> count histogram).  No-op for
    [n <= 0]. *)

val now_s : unit -> float
(** Monotonic wall clock, in seconds (for throughput figures). *)

val span : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observing its elapsed monotonic wall time in seconds
    (even if it raises).  Wall time never feeds the tracer — simulated-time
    measurements are the tracer's job. *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** exact minimum observation (0 when empty) *)
  hs_max : float;  (** exact maximum observation (0 when empty) *)
  hs_buckets : (int * int) list;  (** (bucket exponent, count), ascending *)
  hs_exact : (float * int) list option;
      (** exact (value, count) multiset, ascending by value, retained
          while the histogram has seen at most 64 distinct values;
          [None] once it overflowed that limit *)
}

val percentile : hist_snapshot -> float -> float
(** [percentile h q] for [q] in [[0, 1]]: the exact order statistic at
    rank [ceil (q * count)] while the histogram has at most 64 distinct
    observed values (small-count exactness); beyond that, a conservative
    estimate from the log2 buckets — the upper bound [2^k] of the bucket
    containing the rank, clamped into [[hs_min, hs_max]].  Never
    under-reports; a quantile landing in the top occupied bucket returns
    the exact maximum.  [0] when empty. *)

type snapshot = {
  s_counters : (string * int) list;  (** sorted by name *)
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
val reset : unit -> unit
(** Zero every registered instrument (instruments stay registered). *)

val to_json : snapshot -> string
val pp : Format.formatter -> snapshot -> unit
