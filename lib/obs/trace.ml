(* Cycle-accurate event tracer.

   A trace is a preallocated ring buffer of structured events stamped with
   the *simulated* cycle counter (never wall time), so a trace of a given
   scenario is bit-identical run after run and across serial/parallel
   execution.  Emission performs no simulated work — it charges no cycles
   and touches no cache state — so enabling tracing cannot perturb the
   measurement it observes (the zero-overhead property test_obs verifies).

   Each event also carries the CPU's cumulative memory-stall cycle counter
   at emission time, which lets the attribution layer split any window of
   the trace into cache-miss cycles and compute cycles without storing a
   per-access event. *)

type kind =
  | Kernel_enter of { event : string }
  | Kernel_exit of { outcome : string }
  | Preempt_point of { taken : bool }
  | Sched_decision of { tcb : int; priority : int }
  | Irq_assert of { line : int }
  | Irq_armed of { line : int; fire_at : int }
  | Irq_deliver of { line : int; latency : int }
  | Ep_enqueue of { ep : int; tcb : int }
  | Ep_dequeue of { ep : int; tcb : int }
  | Untyped_clear of { addr : int; bytes : int }
  | Vspace_unmap of { addr : int }
  | Pin_evict of { cache : string; addr : int }
  | Marker of string

type event = { at : int; stall : int; kind : kind }

type t = {
  ring : event array;
  capacity : int;
  core : int;  (* per-ring, not per-event: tagging costs nothing on emit *)
  mutable total : int;  (* events ever emitted; write cursor = total mod capacity *)
}

let default_capacity = 65_536

let dummy = { at = 0; stall = 0; kind = Marker "" }

let create ?(capacity = default_capacity) ?(core = 0) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if core < 0 then invalid_arg "Trace.create: core must be >= 0";
  { ring = Array.make capacity dummy; capacity; core; total = 0 }

(* Ring overflows are surfaced in the metrics registry so a capture that
   silently wrapped is visible in every metrics dump (and warnable in the
   CLI).  Lazy: trace rings are created in hot paths that must not touch
   the registry lock. *)
let dropped_counter = lazy (Metrics.counter "trace.dropped")

let emit t ~at ~stall kind =
  if t.total >= t.capacity then Metrics.incr (Lazy.force dropped_counter);
  t.ring.(t.total mod t.capacity) <- { at; stall; kind };
  t.total <- t.total + 1

let length t = min t.total t.capacity
let capacity t = t.capacity
let core t = t.core
let dropped t = max 0 (t.total - t.capacity)
let clear t = t.total <- 0

(* Oldest first.  When the ring has wrapped, the oldest surviving event
   sits at the write cursor. *)
let events t =
  let n = length t in
  let first = if t.total > t.capacity then t.total mod t.capacity else 0 in
  List.init n (fun i -> t.ring.((first + i) mod t.capacity))

(* A ring sized to hold exactly the given events; lets an extracted
   window (e.g. a flight-recorder capture) reuse the renderers below. *)
let of_events ?(core = 0) evs =
  let t = create ~capacity:(max 1 (List.length evs)) ~core () in
  List.iter (fun e -> emit t ~at:e.at ~stall:e.stall e.kind) evs;
  t

(* --- rendering --- *)

let kind_name = function
  | Kernel_enter _ -> "kernel_enter"
  | Kernel_exit _ -> "kernel_exit"
  | Preempt_point _ -> "preempt_point"
  | Sched_decision _ -> "sched_decision"
  | Irq_assert _ -> "irq_assert"
  | Irq_armed _ -> "irq_armed"
  | Irq_deliver _ -> "irq_deliver"
  | Ep_enqueue _ -> "ep_enqueue"
  | Ep_dequeue _ -> "ep_dequeue"
  | Untyped_clear _ -> "untyped_clear"
  | Vspace_unmap _ -> "vspace_unmap"
  | Pin_evict _ -> "pin_evict"
  | Marker _ -> "marker"

let pp_kind ppf = function
  | Kernel_enter { event } -> Fmt.pf ppf "enter %s" event
  | Kernel_exit { outcome } -> Fmt.pf ppf "exit %s" outcome
  | Preempt_point { taken } ->
      Fmt.pf ppf "preempt-point %s" (if taken then "taken" else "not-taken")
  | Sched_decision { tcb; priority } ->
      Fmt.pf ppf "sched-decision tcb%d prio=%d" tcb priority
  | Irq_assert { line } -> Fmt.pf ppf "irq%d asserted" line
  | Irq_armed { line; fire_at } -> Fmt.pf ppf "irq%d armed for cycle %d" line fire_at
  | Irq_deliver { line; latency } ->
      Fmt.pf ppf "irq%d delivered (latency %d)" line latency
  | Ep_enqueue { ep; tcb } -> Fmt.pf ppf "ep%d enqueue tcb%d" ep tcb
  | Ep_dequeue { ep; tcb } -> Fmt.pf ppf "ep%d dequeue tcb%d" ep tcb
  | Untyped_clear { addr; bytes } ->
      Fmt.pf ppf "untyped-clear %#x +%d bytes" addr bytes
  | Vspace_unmap { addr } -> Fmt.pf ppf "vspace-unmap %#x" addr
  | Pin_evict { cache; addr } -> Fmt.pf ppf "pin-evict %s %#x" cache addr
  | Marker m -> Fmt.pf ppf "marker %s" m

let pp_event ppf e = Fmt.pf ppf "@%d(stall %d) %a" e.at e.stall pp_kind e.kind

(* Human-readable timeline: absolute cycle, delta to the previous event,
   cumulative stall, event. *)
let pp_timeline ppf t =
  if t.core > 0 then Fmt.pf ppf "(core %d)@," t.core;
  if dropped t > 0 then
    Fmt.pf ppf "(ring wrapped: %d oldest events dropped)@," (dropped t);
  Fmt.pf ppf "%10s %9s %10s  %s@," "cycle" "+delta" "stall" "event";
  let prev = ref None in
  List.iter
    (fun e ->
      let delta = match !prev with None -> 0 | Some p -> e.at - p in
      prev := Some e.at;
      Fmt.pf ppf "%10d %9s %10d  %a@," e.at
        (if delta = 0 then "" else Fmt.str "+%d" delta)
        e.stall pp_kind e.kind)
    (events t)

(* --- Chrome trace_event export (Perfetto-loadable) ---

   Kernel entries/exits become duration events (ph B/E); everything else
   is an instant event (ph i).  Timestamps are microseconds; the caller
   supplies the simulated clock rate in cycles per microsecond. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json ?(cycles_per_us = 1.0) t =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ts cycles = float_of_int cycles /. cycles_per_us in
  (* One Perfetto thread lane per core.  Core 0 renders as tid 1 with no
     extra metadata — byte-identical to the single-core output. *)
  let tid = t.core + 1 in
  addf "{\"traceEvents\": [\n";
  addf
    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
     \"args\": {\"name\": \"sel4rt simulator\"}}" tid;
  if t.core > 0 then
    addf
      ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
       %d, \"args\": {\"name\": \"core %d\"}}"
      tid t.core;
  let common name ph at =
    addf ",\n  {\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \
          \"tid\": %d" (json_escape name) ph (ts at) tid
  in
  let args_close pairs stall =
    addf ", \"args\": {";
    List.iter (fun (k, v) -> addf "\"%s\": %s, " k v) pairs;
    addf "\"stall_cycles\": %d}}" stall
  in
  List.iter
    (fun e ->
      match e.kind with
      | Kernel_enter { event } ->
          common ("kernel: " ^ event) "B" e.at;
          args_close [ ("cycle", string_of_int e.at) ] e.stall
      | Kernel_exit { outcome } ->
          common ("kernel: " ^ outcome) "E" e.at;
          args_close [ ("outcome", "\"" ^ json_escape outcome ^ "\"") ] e.stall
      | kind ->
          common (kind_name kind) "i" e.at;
          addf ", \"s\": \"t\"";
          let pairs =
            match kind with
            | Preempt_point { taken } ->
                [ ("taken", if taken then "true" else "false") ]
            | Sched_decision { tcb; priority } ->
                [ ("tcb", string_of_int tcb); ("priority", string_of_int priority) ]
            | Irq_assert { line } -> [ ("line", string_of_int line) ]
            | Irq_armed { line; fire_at } ->
                [ ("line", string_of_int line); ("fire_at", string_of_int fire_at) ]
            | Irq_deliver { line; latency } ->
                [ ("line", string_of_int line); ("latency", string_of_int latency) ]
            | Ep_enqueue { ep; tcb } | Ep_dequeue { ep; tcb } ->
                [ ("ep", string_of_int ep); ("tcb", string_of_int tcb) ]
            | Untyped_clear { addr; bytes } ->
                [ ("addr", string_of_int addr); ("bytes", string_of_int bytes) ]
            | Vspace_unmap { addr } -> [ ("addr", string_of_int addr) ]
            | Pin_evict { cache; addr } ->
                [ ("cache", "\"" ^ json_escape cache ^ "\"");
                  ("addr", string_of_int addr) ]
            | Marker m -> [ ("marker", "\"" ^ json_escape m ^ "\"") ]
            | Kernel_enter _ | Kernel_exit _ -> []
          in
          args_close (("cycle", string_of_int e.at) :: pairs) e.stall)
    (events t);
  addf "\n], \"displayTimeUnit\": \"ns\", \"otherData\": {\"dropped_events\": %d}}\n"
    (dropped t);
  Buffer.contents buf
