(** Bound-vs-observation alignment: where the analytic worst case and the
    observed worst delivery disagree, per (scenario, build) run.

    The bound charges cycles to source functions ({!Bound_profile});
    the flight recorder shows which kernel sections the observed worst
    delivery actually crossed ({!Tail_report}).  A gap report marks every
    function the bound pays for that the observed worst window never
    executed, and attributes the bound headroom accordingly. *)

type func_gap = {
  g_func : string;  (** source function charged by the bound *)
  g_bound_cycles : int;  (** cycles the bound charges it *)
  g_executed : bool;
      (** whether the observed worst window executed it (per the kernel
          section → function mapping supplied by the caller) *)
}

type t = {
  g_scenario : string;
  g_build : string;
  g_bound : int;  (** analytic bound, cycles *)
  g_observed_max : int;  (** worst observed latency, cycles *)
  g_headroom : int;  (** [g_bound - g_observed_max] *)
  g_worst_sections : (string * int) list;
      (** kernel-section attribution of the observed worst window *)
  g_funcs : func_gap list;  (** largest charge first *)
  g_unexecuted_cycles : int;
      (** bound cycles charged to functions the worst window never
          executed — the structural part of the headroom *)
}

val make :
  scenario:string ->
  build:string ->
  bound:int ->
  observed_max:int ->
  sections:(string * int) list ->
  charged:(string * int) list ->
  executed:(string -> bool) ->
  t
(** [charged] is per-function bound attribution
    ({!Bound_profile.by_function}); [executed f] decides whether the
    observed worst window executed function [f] (the caller owns the
    kernel-section → function mapping). *)

val to_json : t list -> string
(** JSON array of per-run gap reports. *)

val pp : t Fmt.t
