(* Block-by-block decomposition of a WCET bound.

   A profile is the optimal IPET basis made legible: every row is a block
   with positive execution count on the analytic worst-case path, its
   per-visit cycles split into instruction execution, memory stall and
   pipeline penalty; the [p_binding] rows are the loop bounds and
   provenance-labelled user constraints that are tight at the optimum —
   the constraints that actually shape the bound.

   The invariant the exports rely on: the ILP objective is exactly
   [sum_b cycles_b * count_b], so [total] reproduces the bound to the
   cycle and the folded-stack / JSON views account for every cycle. *)

type row = {
  r_func : string;
  r_context : string;
  r_label : string;
  r_count : int;
  r_cycles : int;
  r_exec : int;
  r_stall : int;
  r_pipeline : int;
  r_fetch_misses : int;
  r_data_misses : int;
}

type t = {
  p_entry : string;
  p_wcet : int;
  p_rows : row list;
  p_edges : ((string * string) * int) list;
  p_binding : (string * int) list;
}

let total t =
  List.fold_left (fun acc r -> acc + (r.r_count * r.r_cycles)) 0 t.p_rows

let component f t =
  List.fold_left (fun acc r -> acc + (r.r_count * f r)) 0 t.p_rows

let exec_total = component (fun r -> r.r_exec)
let stall_total = component (fun r -> r.r_stall)
let pipeline_total = component (fun r -> r.r_pipeline)
let exact t = total t = t.p_wcet

let by_function t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let cycles = r.r_count * r.r_cycles in
      match Hashtbl.find_opt tbl r.r_func with
      | None ->
          order := r.r_func :: !order;
          Hashtbl.add tbl r.r_func cycles
      | Some c -> Hashtbl.replace tbl r.r_func (c + cycles))
    t.p_rows;
  List.rev !order
  |> List.map (fun f -> (f, Hashtbl.find tbl f))
  |> List.stable_sort (fun (_, a) (_, b) -> compare b a)

let functions t = List.map fst (by_function t)

let concat ~entry parts =
  {
    p_entry = entry;
    p_wcet = List.fold_left (fun acc p -> acc + p.p_wcet) 0 parts;
    p_rows =
      List.concat_map
        (fun p ->
          List.map
            (fun r ->
              { r with r_context = p.p_entry ^ ";" ^ r.r_context })
            p.p_rows)
        parts;
    p_edges = List.concat_map (fun p -> p.p_edges) parts;
    p_binding =
      List.concat_map
        (fun p ->
          List.map (fun (l, v) -> (p.p_entry ^ ": " ^ l, v)) p.p_binding)
        parts;
  }

(* Folded stacks: the inlining context is already a call path
   ("syscall/lookup@b3"); splitting on '/' gives natural flamegraph
   frames, with the cycle component (exec/stall/pipeline) as the leaf so
   the split is visible as colour-by-frame in any flamegraph viewer. *)
let to_folded t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      let frames =
        String.concat ";"
          (t.p_entry :: String.split_on_char '/' r.r_context)
      in
      List.iter
        (fun (component, per_visit) ->
          if per_visit > 0 then
            Buffer.add_string buf
              (Printf.sprintf "%s;%s;%s %d\n" frames r.r_label component
                 (r.r_count * per_visit)))
        [ ("exec", r.r_exec); ("stall", r.r_stall); ("pipeline", r.r_pipeline) ])
    t.p_rows;
  Buffer.contents buf

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n  \"entry\": \"%s\",\n  \"wcet_cycles\": %d,\n" (json_escape t.p_entry)
    t.p_wcet;
  addf "  \"exec_cycles\": %d,\n  \"stall_cycles\": %d,\n" (exec_total t)
    (stall_total t);
  addf "  \"pipeline_cycles\": %d,\n  \"exact\": %b,\n" (pipeline_total t)
    (exact t);
  addf "  \"blocks\": [\n";
  List.iteri
    (fun i r ->
      addf
        "    {\"func\": \"%s\", \"context\": \"%s\", \"label\": \"%s\", \
         \"count\": %d, \"cycles_per_visit\": %d, \"total_cycles\": %d, \
         \"exec\": %d, \"stall\": %d, \"pipeline\": %d, \"fetch_misses\": \
         %d, \"data_misses\": %d}%s\n"
        (json_escape r.r_func) (json_escape r.r_context) (json_escape r.r_label)
        r.r_count r.r_cycles (r.r_count * r.r_cycles) r.r_exec r.r_stall
        r.r_pipeline r.r_fetch_misses r.r_data_misses
        (if i < List.length t.p_rows - 1 then "," else ""))
    t.p_rows;
  addf "  ],\n  \"edges\": [\n";
  List.iteri
    (fun i ((a, b), c) ->
      addf "    {\"from\": \"%s\", \"to\": \"%s\", \"count\": %d}%s\n"
        (json_escape a) (json_escape b) c
        (if i < List.length t.p_edges - 1 then "," else ""))
    t.p_edges;
  addf "  ],\n  \"binding_constraints\": [\n";
  List.iteri
    (fun i (label, lhs) ->
      addf "    {\"label\": \"%s\", \"lhs\": %d}%s\n" (json_escape label) lhs
        (if i < List.length t.p_binding - 1 then "," else ""))
    t.p_binding;
  addf "  ]\n}\n";
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "@[<v>WCET decomposition: %s = %d cycles@,@," t.p_entry t.p_wcet;
  Fmt.pf ppf "%-34s %5s %9s %10s %8s %8s %8s@," "block" "count" "cyc/visit"
    "total" "exec" "stall" "pipe";
  let by_fn = by_function t in
  List.iter
    (fun (func, fn_total) ->
      List.iter
        (fun r ->
          if r.r_func = func then
            Fmt.pf ppf "%-34s %5d %9d %10d %8d %8d %8d@,"
              (r.r_context ^ "/" ^ r.r_label)
              r.r_count r.r_cycles (r.r_count * r.r_cycles)
              (r.r_count * r.r_exec) (r.r_count * r.r_stall)
              (r.r_count * r.r_pipeline))
        t.p_rows;
      Fmt.pf ppf "%-34s %5s %9s %10d  (%s)@," "" "" "" fn_total func)
    by_fn;
  Fmt.pf ppf "@,%-34s %5s %9s %10d %8d %8d %8d@," "total" "" "" (total t)
    (exec_total t) (stall_total t) (pipeline_total t);
  Fmt.pf ppf "bound check: sum %d %s bound %d@," (total t)
    (if exact t then "=" else "<>")
    t.p_wcet;
  if t.p_binding <> [] then begin
    Fmt.pf ppf "@,binding constraints at the optimum:@,";
    List.iter
      (fun (label, lhs) ->
        (* Relative rows (loop bounds, conflicts vs. an entry count)
           evaluate to 0 when tight; printing that adds nothing. *)
        if lhs = 0 then Fmt.pf ppf "  tight: %s@," label
        else Fmt.pf ppf "  tight at %d: %s@," lhs label)
      t.p_binding
  end;
  Fmt.pf ppf "@]"
