(** Cycle-accurate event tracer: a preallocated ring buffer of structured
    events stamped with the simulated cycle counter (never wall time).

    Determinism: emission reads only the simulated cycle and stall
    counters, so a trace of a given scenario is bit-identical run after
    run and across serial/parallel execution.  Zero overhead: emission
    charges no simulated cycles and touches no cache state, so enabling
    tracing cannot change observed cycle counts. *)

type kind =
  | Kernel_enter of { event : string }  (** kernel entry: event name *)
  | Kernel_exit of { outcome : string }
  | Preempt_point of { taken : bool }
      (** a preemption point was polled; [taken] if it preempted *)
  | Sched_decision of { tcb : int; priority : int }
  | Irq_assert of { line : int }
  | Irq_armed of { line : int; fire_at : int }
      (** a future interrupt was scheduled *)
  | Irq_deliver of { line : int; latency : int }
      (** in-kernel delivery; [latency] cycles since assertion *)
  | Ep_enqueue of { ep : int; tcb : int }
  | Ep_dequeue of { ep : int; tcb : int }
  | Untyped_clear of { addr : int; bytes : int }
      (** one preemptible chunk of untyped-memory clearing *)
  | Vspace_unmap of { addr : int }
  | Pin_evict of { cache : string; addr : int }
      (** a pinned (or pin-displaced) line was evicted *)
  | Marker of string

type event = { at : int;  (** simulated cycle *) stall : int;
               (** cumulative memory-stall cycles at emission *)
               kind : kind }

type t

val create : ?capacity:int -> ?core:int -> unit -> t
(** Preallocate a ring of [capacity] events (default 65536).  When full,
    the oldest events are overwritten.  [core] (default 0) tags the whole
    ring with the core it records — per-ring rather than per-event, so
    tagging adds no cost to {!emit} and no word to events; renderers give
    each core its own lane. *)

val emit : t -> at:int -> stall:int -> kind -> unit
val length : t -> int
val capacity : t -> int

val core : t -> int
(** The core this ring records (0 on the single-core model). *)

val dropped : t -> int
(** Events lost to ring wrap-around. *)

val clear : t -> unit
val events : t -> event list
(** Surviving events, oldest first. *)

val of_events : ?core:int -> event list -> t
(** A ring sized to exactly the given events, in order — lets an
    extracted window (e.g. a flight-recorder capture) reuse
    {!pp_timeline} and {!to_chrome_json}.  [core] as in {!create}. *)

val kind_name : kind -> string
val pp_kind : kind Fmt.t
val pp_event : event Fmt.t

val pp_timeline : Format.formatter -> t -> unit
(** Human-readable timeline: cycle, delta, cumulative stall, event. *)

val to_chrome_json : ?cycles_per_us:float -> t -> string
(** Chrome [trace_event] JSON (loadable in Perfetto / chrome://tracing).
    Kernel entries become duration events, everything else instants;
    timestamps are cycles converted at [cycles_per_us] (default 1.0).
    Events render on thread lane [core + 1], so multicore captures lay
    each core out as its own track; a core-0 ring renders byte-identically
    to the pre-SMP output. *)
