(* Latency attribution: turn a raw event trace into per-run breakdowns of
   where the cycles went.

   Two questions matter for the paper's argument:

   - For an interrupt: which non-preemptible section was executing when
     the line was asserted, how long until the next preemption opportunity,
     and how the response latency splits into memory-stall vs compute
     cycles.  (The assertion cycle is recovered from the delivery event:
     asserted = delivered - latency, which also covers interrupts armed to
     fire mid-operation.)

   - For any measured entry: the longest non-preemptible section — the
     longest stretch between consecutive preemption opportunities (kernel
     entry, polled preemption points, kernel exit) — since that is what
     bounds the response time an interrupt arriving at the worst moment
     would see. *)

type irq_breakdown = {
  core : int;  (* which core's ring the delivery came from; 0 single-core *)
  line : int;
  asserted_at : int;
  delivered_at : int;
  latency : int;
  section : string;  (* kernel event in progress at assertion, or "user" *)
  cycles_to_preempt : int option;
  stall_cycles : int;
  compute_cycles : int;
}

type section = {
  sec_label : string;  (* kernel event owning the longest section *)
  sec_cycles : int;
  sec_stall : int;  (* stall cycles inside that section *)
}

(* The kernel event (if any) in progress at cycle [at]: the last
   Kernel_enter at or before [at] without a matching exit before [at]. *)
let section_at events at =
  let rec walk current = function
    | [] -> current
    | (e : Trace.event) :: rest ->
        if e.Trace.at > at then current
        else
          let current =
            match e.Trace.kind with
            | Trace.Kernel_enter { event } -> Some event
            | Trace.Kernel_exit _ -> None
            | _ -> current
          in
          walk current rest
  in
  walk None events

(* Cumulative stall counter as of cycle [at]: the stall stamp of the last
   event at or before it. *)
let stall_at events at =
  let rec walk best = function
    | [] -> best
    | (e : Trace.event) :: rest ->
        if e.Trace.at > at then best else walk e.Trace.stall rest
  in
  walk 0 events

let irq_breakdowns ?(core = 0) events =
  List.filter_map
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Irq_deliver { line; latency } ->
          let delivered_at = e.Trace.at in
          let asserted_at = delivered_at - latency in
          let section =
            match section_at events asserted_at with
            | Some s -> s
            | None -> "user"
          in
          let cycles_to_preempt =
            List.find_map
              (fun (p : Trace.event) ->
                match p.Trace.kind with
                | Trace.Preempt_point _
                  when p.Trace.at >= asserted_at && p.Trace.at <= delivered_at
                  ->
                    Some (p.Trace.at - asserted_at)
                | _ -> None)
              events
          in
          let stall_cycles =
            max 0 (min latency (e.Trace.stall - stall_at events asserted_at))
          in
          {
            core;
            line;
            asserted_at;
            delivered_at;
            latency;
            section;
            cycles_to_preempt;
            stall_cycles;
            compute_cycles = latency - stall_cycles;
          }
          |> Option.some
      | _ -> None)
    events

(* Longest gap between consecutive preemption opportunities inside kernel
   execution.  Opportunities: kernel entry, every polled preemption point,
   kernel exit. *)
let longest_nonpreemptible events =
  let best = ref None in
  let consider label cycles stall =
    match !best with
    | Some b when b.sec_cycles >= cycles -> ()
    | _ -> best := Some { sec_label = label; sec_cycles = cycles; sec_stall = stall }
  in
  let current = ref None in
  (* (label, cycle, stall) of the last opportunity *)
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Kernel_enter { event } ->
          current := Some (event, e.Trace.at, e.Trace.stall)
      | Trace.Preempt_point _ -> (
          match !current with
          | Some (label, at, stall) ->
              consider label (e.Trace.at - at) (e.Trace.stall - stall);
              current := Some (label, e.Trace.at, e.Trace.stall)
          | None -> ())
      | Trace.Kernel_exit _ -> (
          match !current with
          | Some (label, at, stall) ->
              consider label (e.Trace.at - at) (e.Trace.stall - stall);
              current := None
          | None -> ())
      | _ -> ())
    events;
  !best

(* Cycles per kernel section inside a window: segments between consecutive
   events are attributed to the kernel event in progress (or "user"),
   clipped to [from, until].  Sections keep first-appearance order among
   equals and sort by cycles, largest first. *)
let section_profile events ~from ~until =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  let charge section cycles =
    if cycles > 0 then
      match Hashtbl.find_opt tbl section with
      | None ->
          order := section :: !order;
          Hashtbl.add tbl section cycles
      | Some c -> Hashtbl.replace tbl section (c + cycles)
  in
  let section = ref (match section_at events from with
    | Some s -> s
    | None -> "user")
  in
  let last = ref from in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.at > from && e.Trace.at <= until then begin
        charge !section (e.Trace.at - !last);
        last := e.Trace.at
      end;
      if e.Trace.at <= until then
        match e.Trace.kind with
        | Trace.Kernel_enter { event } -> if e.Trace.at >= from then section := event
        | Trace.Kernel_exit _ -> if e.Trace.at >= from then section := "user"
        | _ -> ())
    events;
  charge !section (until - !last);
  List.rev !order
  |> List.map (fun s -> (s, Hashtbl.find tbl s))
  |> List.stable_sort (fun (_, a) (_, b) -> compare b a)

let pp_irq_breakdown ppf b =
  (* core prefix only when tagged: single-core output is unchanged *)
  if b.core > 0 then Fmt.pf ppf "[core %d] " b.core;
  Fmt.pf ppf
    "irq%d: asserted @%d in %s, delivered @%d (latency %d = %d stall + %d \
     compute%a)"
    b.line b.asserted_at b.section b.delivered_at b.latency b.stall_cycles
    b.compute_cycles
    (fun ppf -> function
      | Some c -> Fmt.pf ppf ", %d cycles to preemption point" c
      | None -> Fmt.pf ppf ", delivered on exit path")
    b.cycles_to_preempt

let pp_section ppf s =
  Fmt.pf ppf "%s: %d cycles non-preemptible (%d stall)" s.sec_label s.sec_cycles
    s.sec_stall
