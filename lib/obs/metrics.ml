(* Process-wide metrics registry: counters, gauges, and log-bucketed
   histograms with one snapshot type.

   This unifies the ad-hoc counters scattered over the codebase (analysis
   cache hits/misses, hardware perf counters, pool statistics) and carries
   the per-IPET-stage timing spans.  Counters are atomic and gauges/
   histograms take a short per-registry lock, so instruments are safe to
   update from any domain of the Parallel pool; totals are
   order-independent, so metrics stay deterministic under parallelism
   (wall-time span *values* are not, by nature — they never feed traces).

   Histograms use base-2 log-scaled buckets: an observation v (> 0) lands
   in bucket ceil(log2 v), i.e. the bucket with upper bound 2^k covers
   (2^(k-1), 2^k].  Latency spans observe seconds, so bucket -20 is about
   a microsecond and bucket 0 is a second. *)

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  mutable count : int;
  mutable sum : float;
  mutable min_value : float;
  mutable max_value : float;
  buckets : (int, int) Hashtbl.t;  (* exponent -> observations *)
  mutable exact : (float, int) Hashtbl.t option;
      (* value -> observations, kept while the histogram has at most
         [exact_limit] distinct values; [None] once it overflowed *)
}

(* Small-count exactness: up to this many distinct observed values, the
   exact multiset is retained and percentiles are exact rather than
   bucket-conservative. *)
let exact_limit = 64

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let intern tbl name make =
  with_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some i -> i
      | None ->
          let i = make () in
          Hashtbl.replace tbl name i;
          i)

let counter name =
  intern counters name (fun () -> { c_name = name; cell = Atomic.make 0 })

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)
let value c = Atomic.get c.cell
let set_counter c v = Atomic.set c.cell v

let gauge name = intern gauges name (fun () -> { g_name = name; g_value = 0.0 })
let set_gauge g v = with_lock (fun () -> g.g_value <- v)

let histogram name =
  intern histograms name (fun () ->
      {
        h_name = name;
        count = 0;
        sum = 0.0;
        min_value = infinity;
        max_value = neg_infinity;
        buckets = Hashtbl.create 8;
        exact = Some (Hashtbl.create 8);
      })

let bucket_of v =
  if v <= 0.0 then min_int
  else
    let k = int_of_float (Float.ceil (Float.log2 v)) in
    (* Guard the rounding edge: ensure v <= 2^k. *)
    if 2.0 ** float_of_int k < v then k + 1 else k

let record_exact h ~n v =
  match h.exact with
  | None -> ()
  | Some tbl -> (
      match Hashtbl.find_opt tbl v with
      | Some c -> Hashtbl.replace tbl v (c + n)
      | None ->
          if Hashtbl.length tbl < exact_limit then Hashtbl.add tbl v n
          else h.exact <- None)

let observe h v =
  with_lock (fun () ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_value then h.min_value <- v;
      if v > h.max_value then h.max_value <- v;
      record_exact h ~n:1 v;
      let k = bucket_of v in
      Hashtbl.replace h.buckets k
        (1 + Option.value ~default:0 (Hashtbl.find_opt h.buckets k)))

(* Record [n] observations of the same value in one locked update — the
   bulk path for callers that already hold a value -> count histogram
   (e.g. the soak simulator merging per-shard latency counts). *)
let observe_n h ~n v =
  if n > 0 then
    with_lock (fun () ->
        h.count <- h.count + n;
        h.sum <- h.sum +. (v *. float_of_int n);
        if v < h.min_value then h.min_value <- v;
        if v > h.max_value then h.max_value <- v;
        record_exact h ~n v;
        let k = bucket_of v in
        Hashtbl.replace h.buckets k
          (n + Option.value ~default:0 (Hashtbl.find_opt h.buckets k)))

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Time a thunk on the monotonic wall clock and observe elapsed seconds.
   Wall time is fine here: metrics describe the analysis engine itself;
   simulated-time measurements go through the tracer instead. *)
let span h f =
  let t0 = Monotonic_clock.now () in
  Fun.protect
    ~finally:(fun () ->
      observe h (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) *. 1e-9))
    f

(* --- snapshots --- *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;  (* (exponent, count), ascending *)
  hs_exact : (float * int) list option;
      (* (value, count) ascending by value while <= exact_limit distinct
         values were observed; [None] once the exact table overflowed *)
}

(* Percentile extraction.  With at most [exact_limit] distinct observed
   values the exact multiset survives in [hs_exact] and the percentile is
   the exact order statistic at rank ceil (q * count).  Beyond that, the
   estimate for rank r is the upper bound 2^k of the first log2 bucket
   whose cumulative count reaches r — a conservative (never
   under-reported) latency figure — clamped into [hs_min, hs_max], which
   are tracked exactly.  In particular any percentile that lands in the
   top occupied bucket reports the exact maximum. *)
let percentile h q =
  if h.hs_count = 0 then 0.0
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.hs_count))) in
    match h.hs_exact with
    | Some ((_ :: _) as values) ->
        let rec exact cum = function
          | [] -> h.hs_max
          | (v, n) :: rest -> if cum + n >= rank then v else exact (cum + n) rest
        in
        exact 0 values
    | Some [] | None ->
        let rec walk cum = function
          | [] -> h.hs_max
          | (k, n) :: rest ->
              let cum = cum + n in
              if cum >= rank then
                let upper = if k = min_int then 0.0 else 2.0 ** float_of_int k in
                Float.max h.hs_min (Float.min upper h.hs_max)
              else walk cum rest
        in
        walk 0 h.hs_buckets

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snapshot) list;
}

let snapshot () =
  with_lock (fun () ->
      let sorted fold tbl = List.sort compare (Hashtbl.fold fold tbl []) in
      {
        s_counters =
          sorted (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters;
        s_gauges = sorted (fun name g acc -> (name, g.g_value) :: acc) gauges;
        s_histograms =
          sorted
            (fun name h acc ->
              ( name,
                {
                  hs_count = h.count;
                  hs_sum = h.sum;
                  hs_min = (if h.count = 0 then 0.0 else h.min_value);
                  hs_max = (if h.count = 0 then 0.0 else h.max_value);
                  hs_buckets =
                    List.sort compare
                      (Hashtbl.fold (fun k n acc -> (k, n) :: acc) h.buckets []);
                  hs_exact =
                    Option.map
                      (fun tbl ->
                        List.sort compare
                          (Hashtbl.fold (fun v n acc -> (v, n) :: acc) tbl []))
                      h.exact;
                } )
              :: acc)
            histograms;
      })

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
      Hashtbl.iter
        (fun _ h ->
          h.count <- 0;
          h.sum <- 0.0;
          h.min_value <- infinity;
          h.max_value <- neg_infinity;
          Hashtbl.reset h.buckets;
          h.exact <- Some (Hashtbl.create 8))
        histograms)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sep i = if i > 0 then addf ",\n" else addf "\n" in
  addf "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      sep i;
      addf "    \"%s\": %d" (json_escape name) v)
    s.s_counters;
  addf "\n  },\n  \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      sep i;
      addf "    \"%s\": %.6f" (json_escape name) v)
    s.s_gauges;
  addf "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      sep i;
      addf
        "    \"%s\": {\"count\": %d, \"sum\": %.9f, \"min\": %.9f, \
         \"max\": %.9f, \"p50\": %.9f, \"p90\": %.9f, \"p99\": %.9f, \
         \"p999\": %.9f, \"buckets\": ["
        (json_escape name) h.hs_count h.hs_sum h.hs_min h.hs_max
        (percentile h 0.5) (percentile h 0.9) (percentile h 0.99)
        (percentile h 0.999);
      List.iteri
        (fun j (k, n) ->
          if j > 0 then addf ", ";
          addf "{\"le_pow2\": %d, \"count\": %d}" k n)
        h.hs_buckets;
      addf "]}")
    s.s_histograms;
  addf "\n  }\n}\n";
  Buffer.contents buf

let pp ppf s =
  Fmt.pf ppf "counters:@,";
  List.iter (fun (n, v) -> Fmt.pf ppf "  %-44s %12d@," n v) s.s_counters;
  if s.s_gauges <> [] then begin
    Fmt.pf ppf "gauges:@,";
    List.iter (fun (n, v) -> Fmt.pf ppf "  %-44s %12.3f@," n v) s.s_gauges
  end;
  if s.s_histograms <> [] then begin
    Fmt.pf ppf "histograms:@,";
    List.iter
      (fun (n, h) ->
        Fmt.pf ppf
          "  %-44s n=%d sum=%.4fs min=%.4fs p50=%.4fs p99=%.4fs max=%.4fs@," n
          h.hs_count h.hs_sum h.hs_min (percentile h 0.5) (percentile h 0.99)
          h.hs_max)
      s.s_histograms
  end
