(** Block-by-block decomposition of a WCET bound.

    The IPET ILP solution is not just a number: the optimal assignment of
    block and edge counts *is* the analytic worst-case path.  A profile
    reconstructs that path as per-block cycle contributions — split into
    instruction execution, memory (cache) stall and pipeline (branch)
    cycles — together with the edge flows and the binding constraint rows
    (with their provenance labels) that limit the objective.

    This module is a pure data container with folded-stack and JSON
    exports; [lib/wcet]'s [Explain] builds profiles from analysis
    results, keeping [lib/obs] dependency-free. *)

type row = {
  r_func : string;  (** source function the block was inlined from *)
  r_context : string;
      (** virtual-inlining call path (e.g. ["syscall/lookup@b3"]);
          equals [r_func] for top-level blocks *)
  r_label : string;  (** source block label *)
  r_count : int;  (** executions on the worst-case path *)
  r_cycles : int;  (** sound per-visit cycles (the ILP objective weight) *)
  r_exec : int;  (** per-visit instruction-issue cycles *)
  r_stall : int;  (** per-visit memory-hierarchy stall cycles *)
  r_pipeline : int;  (** per-visit branch/pipeline penalty cycles *)
  r_fetch_misses : int;  (** per-visit I-cache misses charged *)
  r_data_misses : int;  (** per-visit D-cache misses charged *)
}
(** Invariant: [r_cycles = r_exec + r_stall + r_pipeline], so row totals
    sum exactly to the bound. *)

type t = {
  p_entry : string;  (** analysed entry point (e.g. ["syscall"]) *)
  p_wcet : int;  (** the bound being decomposed, in cycles *)
  p_rows : row list;  (** blocks with positive worst-case count *)
  p_edges : ((string * string) * int) list;
      (** edge flows at the optimum: (from label, to label) -> count *)
  p_binding : (string * int) list;
      (** tight constraint rows at the optimum: (provenance-carrying ILP
          row label, left-hand-side value) *)
}

val total : t -> int
(** Sum of [r_count * r_cycles] over the rows; equals [p_wcet] for any
    profile built from a solved ILP. *)

val exec_total : t -> int

val stall_total : t -> int

val pipeline_total : t -> int

val exact : t -> bool
(** [total t = p_wcet] — the decomposition accounts for every cycle of
    the bound. *)

val by_function : t -> (string * int) list
(** Total cycles charged per source function, largest first. *)

val functions : t -> string list
(** Source functions charged by the bound, largest contribution first. *)

val concat : entry:string -> t list -> t
(** Combine profiles end-to-end (e.g. syscall + interrupt path for the
    full kernel-entry response bound); [p_wcet] is the sum of the parts
    and rows keep their per-part entry as a context prefix. *)

val to_folded : t -> string
(** Folded-stack (flamegraph-collapsed) lines:
    [entry;call;path;label;component count], one line per non-zero
    execution/stall/pipeline component, newline-terminated.  Feed
    directly to [flamegraph.pl] or speedscope. *)

val to_json : t -> string

val pp : t Fmt.t
(** Human-readable decomposition: rows grouped by function with
    subtotals, the exec/stall/pipeline split, edge flows elided, and the
    binding constraints that shape the optimum. *)
