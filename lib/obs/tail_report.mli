(** Worst-delivery forensics: the flight-recorder output of a soak
    campaign.

    Each record is one of the worst-N interrupt deliveries of a
    (scenario, build) run, together with the full trace window
    surrounding it (armed → deliver: preemption polls, cache evictions,
    scheduler decisions) recaptured by deterministic replay, and the
    attribution of the window's cycles to kernel sections. *)

type delivery = {
  d_scenario : string;
  d_build : string;
  d_rank : int;  (** 0 = worst delivery of the run *)
  d_line : int;  (** IRQ line *)
  d_latency : int;  (** observed response latency, cycles *)
  d_bound : int;  (** the analytic bound the run was gated against *)
  d_shard : int;  (** shard index within the run *)
  d_entry : int;  (** entry index within the shard *)
  d_asserted_at : int;  (** shard-local cycle of assertion *)
  d_delivered_at : int;  (** shard-local cycle of delivery *)
  d_section : string;  (** kernel section in progress at assertion *)
  d_sections : (string * int) list;
      (** window cycles attributed per kernel section, largest first *)
  d_window : Trace.event list;
      (** recaptured trace window around the delivery *)
}

type t = {
  t_worst_n : int;  (** requested worst-N per run *)
  t_deliveries : delivery list;  (** grouped by run, rank order within *)
}

val chrome_traces : ?cycles_per_us:float -> t -> (string * string) list
(** One Chrome trace_event JSON per captured delivery:
    [(file stem, json)]; stems are unique and filesystem-safe. *)

val to_json : t -> string

val pp : t Fmt.t
