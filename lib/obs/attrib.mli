(** Latency attribution: per-run breakdowns computed from a raw event
    trace — which non-preemptible section bounded the interrupt response,
    how long to the next preemption opportunity, and how the cycles split
    into memory stall vs compute. *)

type irq_breakdown = {
  core : int;
      (** the core whose ring recorded the delivery (0 on the single-core
          model) — carried so multicore forensics stay attributable *)
  line : int;
  asserted_at : int;  (** recovered as delivered - latency *)
  delivered_at : int;
  latency : int;
  section : string;
      (** kernel event in progress at assertion, or ["user"] *)
  cycles_to_preempt : int option;
      (** assertion to the first polled preemption point; [None] when the
          interrupt was taken on the kernel-exit path *)
  stall_cycles : int;  (** memory-hierarchy cycles within the latency *)
  compute_cycles : int;  (** latency - stall *)
}

val irq_breakdowns : ?core:int -> Trace.event list -> irq_breakdown list
(** One breakdown per [Irq_deliver] event, in delivery order, each tagged
    with [core] (default 0 — pass {!Trace.core} for a tagged ring). *)

type section = {
  sec_label : string;
  sec_cycles : int;
  sec_stall : int;
}

val section_profile :
  Trace.event list -> from:int -> until:int -> (string * int) list
(** Cycles per kernel section (event label, or ["user"]) inside the
    window [\[from, until\]], largest first; segments between consecutive
    events are attributed to the section in progress and clipped to the
    window.  Sums to [until - from]. *)

val longest_nonpreemptible : Trace.event list -> section option
(** The longest stretch between consecutive preemption opportunities
    (kernel entry, polled preemption points, kernel exit), labelled with
    the kernel event executing it. *)

val pp_irq_breakdown : irq_breakdown Fmt.t
val pp_section : section Fmt.t
