(* Bound-vs-observation gap reports: the analytic worst-case path
   (Bound_profile) aligned with the observed worst delivery window
   (Tail_report), per soak run.  Which functions does the bound pay for
   that the observed worst case never executed, and how much of the
   headroom do they explain? *)

type func_gap = { g_func : string; g_bound_cycles : int; g_executed : bool }

type t = {
  g_scenario : string;
  g_build : string;
  g_bound : int;
  g_observed_max : int;
  g_headroom : int;
  g_worst_sections : (string * int) list;
  g_funcs : func_gap list;
  g_unexecuted_cycles : int;
}

let make ~scenario ~build ~bound ~observed_max ~sections ~charged ~executed =
  let funcs =
    List.map
      (fun (f, cycles) ->
        { g_func = f; g_bound_cycles = cycles; g_executed = executed f })
      charged
  in
  {
    g_scenario = scenario;
    g_build = build;
    g_bound = bound;
    g_observed_max = observed_max;
    g_headroom = bound - observed_max;
    g_worst_sections = sections;
    g_funcs = funcs;
    g_unexecuted_cycles =
      List.fold_left
        (fun acc g -> if g.g_executed then acc else acc + g.g_bound_cycles)
        0 funcs;
  }

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json reports =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "[\n";
  let n = List.length reports in
  List.iteri
    (fun i g ->
      addf
        "  {\"scenario\": \"%s\", \"build\": \"%s\", \"bound\": %d, \
         \"observed_max\": %d, \"headroom\": %d, \"unexecuted_cycles\": %d,\n"
        (json_escape g.g_scenario) (json_escape g.g_build) g.g_bound
        g.g_observed_max g.g_headroom g.g_unexecuted_cycles;
      addf "   \"worst_sections\": {";
      List.iteri
        (fun j (s, c) ->
          addf "%s\"%s\": %d" (if j > 0 then ", " else "") (json_escape s) c)
        g.g_worst_sections;
      addf "},\n   \"funcs\": [";
      List.iteri
        (fun j f ->
          addf "%s{\"func\": \"%s\", \"bound_cycles\": %d, \"executed\": %b}"
            (if j > 0 then ", " else "")
            (json_escape f.g_func) f.g_bound_cycles f.g_executed)
        g.g_funcs;
      addf "]}%s\n" (if i < n - 1 then "," else ""))
    reports;
  addf "]\n";
  Buffer.contents buf

let pp ppf g =
  Fmt.pf ppf "@[<v>%s/%s: bound %d, observed max %d, headroom %d (%.1f%%)@,"
    g.g_scenario g.g_build g.g_bound g.g_observed_max g.g_headroom
    (100.0 *. float_of_int g.g_headroom /. float_of_int (max 1 g.g_bound));
  Fmt.pf ppf "  bound charges by function:@,";
  List.iter
    (fun f ->
      Fmt.pf ppf "    %-12s %8d cycles  %s@," f.g_func f.g_bound_cycles
        (if f.g_executed then "executed in worst window"
         else "NOT executed in worst window"))
    g.g_funcs;
  Fmt.pf ppf
    "  %d of %d headroom cycles are blocks the worst window never ran@,"
    (min g.g_unexecuted_cycles g.g_headroom)
    g.g_headroom;
  if g.g_unexecuted_cycles > g.g_headroom then
    Fmt.pf ppf
      "  (unexecuted charge %d exceeds headroom: executed sections ran \
       faster than their worst case)@,"
      g.g_unexecuted_cycles;
  Fmt.pf ppf "@]"
