(* Worst-delivery forensics: bounded flight-recorder captures of the
   worst-N interrupt deliveries per soak run, with per-section cycle
   attribution.  Pure data + rendering; lib/sim populates it by
   deterministic replay of the implicated shards. *)

type delivery = {
  d_scenario : string;
  d_build : string;
  d_rank : int;
  d_line : int;
  d_latency : int;
  d_bound : int;
  d_shard : int;
  d_entry : int;
  d_asserted_at : int;
  d_delivered_at : int;
  d_section : string;
  d_sections : (string * int) list;
  d_window : Trace.event list;
}

type t = { t_worst_n : int; t_deliveries : delivery list }

let stem d =
  Printf.sprintf "%s_%s_rank%d" d.d_scenario
    (String.map (function '+' -> 'p' | c -> c) d.d_build)
    d.d_rank

let chrome_traces ?cycles_per_us t =
  List.map
    (fun d -> (stem d, Trace.to_chrome_json ?cycles_per_us (Trace.of_events d.d_window)))
    t.t_deliveries

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "{\n  \"worst_n\": %d,\n  \"deliveries\": [\n" t.t_worst_n;
  let n = List.length t.t_deliveries in
  List.iteri
    (fun i d ->
      addf
        "    {\"scenario\": \"%s\", \"build\": \"%s\", \"rank\": %d, \
         \"line\": %d, \"latency\": %d, \"bound\": %d, \"shard\": %d, \
         \"entry\": %d, \"asserted_at\": %d, \"delivered_at\": %d, \
         \"section\": \"%s\",\n"
        (json_escape d.d_scenario) (json_escape d.d_build) d.d_rank d.d_line
        d.d_latency d.d_bound d.d_shard d.d_entry d.d_asserted_at
        d.d_delivered_at (json_escape d.d_section);
      addf "     \"sections\": {";
      List.iteri
        (fun j (s, c) ->
          addf "%s\"%s\": %d" (if j > 0 then ", " else "") (json_escape s) c)
        d.d_sections;
      addf "},\n     \"window_events\": %d}%s\n" (List.length d.d_window)
        (if i < n - 1 then "," else ""))
    t.t_deliveries;
  addf "  ]\n}\n";
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "@[<v>worst-delivery flight recorder (worst %d per run):@,"
    t.t_worst_n;
  List.iter
    (fun d ->
      Fmt.pf ppf
        "@,%s/%s #%d: irq%d latency %d (bound %d, %.1f%%) — asserted in %s \
         [shard %d entry %d]@,"
        d.d_scenario d.d_build d.d_rank d.d_line d.d_latency d.d_bound
        (100.0 *. float_of_int d.d_latency /. float_of_int (max 1 d.d_bound))
        d.d_section d.d_shard d.d_entry;
      Fmt.pf ppf "  window [%d, %d] (%d events):" d.d_asserted_at
        d.d_delivered_at
        (List.length d.d_window);
      List.iter
        (fun (s, c) -> Fmt.pf ppf "@,    %-18s %6d cycles" s c)
        d.d_sections)
    t.t_deliveries;
  Fmt.pf ppf "@]"
