(* Exhaustive preemption-point fault injection with differential scheduler
   checking.

   The engine replays each long-running operation under every scheduler
   variant, injecting timer interrupts at chosen preemption-point polls.
   Injection is indexed by poll, not by cycle: the poll sequence of an
   operation is a pure function of the work it has left, so a schedule
   means the same thing under lazy, Benno and Benno+bitmap scheduling, and
   the three final states can be compared byte for byte. *)

open Sel4.Ktypes
module K = Sel4.Kernel
module B = Sel4.Boot

type op = Ep_delete | Badged_abort | Retype_clear | Vspace_delete

let all_ops = [ Ep_delete; Badged_abort; Retype_clear; Vspace_delete ]

let op_name = function
  | Ep_delete -> "ep_delete"
  | Badged_abort -> "badged_abort"
  | Retype_clear -> "retype_clear"
  | Vspace_delete -> "vspace_delete"

type failure = {
  f_op : op;
  f_variant : string;
  f_schedule : int list;
  f_min_schedule : int list;
  f_reason : string;
  f_timeline : string;
}

type op_report = {
  o_op : op;
  o_points : int;
  o_runs : int;
  o_max_restarts : int;
  o_failures : failure list;
}

type report = {
  r_seed : int;
  r_smoke : bool;
  r_ops : op_report list;
  r_total_runs : int;
}

(* --- metrics --- *)

let m_campaigns = Obs.Metrics.counter "inject.campaigns"
let m_runs = Obs.Metrics.counter "inject.runs"
let m_points = Obs.Metrics.counter "inject.points_covered"
let m_failures = Obs.Metrics.counter "inject.failures"
let m_shrink_runs = Obs.Metrics.counter "inject.shrink_runs"
let m_max_restarts = Obs.Metrics.counter "inject.max_restarts"

(* Randomness comes from the shared audited source ({!Sel4_rt.Prng},
   splitmix64): same stream as the historical private generator, so
   campaign results at a given seed are unchanged. *)

(* A sorted multi-injection schedule: 2..5 distinct polls out of [1..n]. *)
let random_schedule r n =
  let want = min n (2 + Sel4_rt.Prng.int r 4) in
  let rec draw acc =
    if List.length acc >= want then acc
    else
      let k = 1 + Sel4_rt.Prng.int r n in
      if List.mem k acc then draw acc else draw (k :: acc)
  in
  List.sort compare (draw [])

(* --- workload sizes --- *)

type sizes = {
  sz_waiters : int;  (* blocked senders queued for deletion *)
  sz_abort_waiters : int;  (* blocked badged senders *)
  sz_frame_bits : int;  (* retyped frame size (cleared in chunks) *)
  sz_ptes : int;  (* small pages mapped through the page table *)
  sz_sections : int;  (* 1 MiB sections mapped in the directory *)
}

let sizes ~smoke =
  if smoke then
    { sz_waiters = 5; sz_abort_waiters = 6; sz_frame_bits = 12; sz_ptes = 4; sz_sections = 1 }
  else
    { sz_waiters = 12; sz_abort_waiters = 14; sz_frame_bits = 14; sz_ptes = 10; sz_sections = 2 }

(* --- scheduler variants under differential test --- *)

let variant_name = function
  | Sel4.Build.Lazy -> "lazy"
  | Sel4.Build.Benno -> "benno"
  | Sel4.Build.Benno_bitmap -> "benno_bitmap"

let variants ~(base : Sel4.Build.t) op =
  let vspace =
    (* Preemptible address-space teardown exists only in the shadow
       design; the ASID design deletes in O(1) with nothing to inject
       into. *)
    match op with
    | Vspace_delete -> Sel4.Build.Shadow_tables
    | _ -> base.Sel4.Build.vspace
  in
  List.map
    (fun sched ->
      { base with Sel4.Build.sched; vspace; preemption_points = true })
    [ Sel4.Build.Lazy; Sel4.Build.Benno; Sel4.Build.Benno_bitmap ]

(* --- operation drivers --- *)

type driver = {
  d_event : K.event;
  d_initiator : tcb;
  d_measure : unit -> int;
      (* Progress toward completion; must strictly decrease between
         consecutive preemptions and reach 0 on completion. *)
}

let queue_len (ep : endpoint) =
  let rec go n = function None -> n | Some t -> go (n + 1) t.ep_next in
  go 0 ep.ep_queue.head

(* Length of the remaining abort scan: nodes from the cursor to the
   end-of-queue marker captured when the abort began. *)
let abort_scan_len (ep : endpoint) =
  match ep.ep_abort with
  | None -> 0
  | Some p ->
      let rec go n = function
        | None -> n
        | Some t -> (
            let n = n + 1 in
            match p.ab_last with
            | Some l when l == t -> n
            | _ -> go n t.ep_next)
      in
      go 0 p.ab_cursor

let expect_done what = function
  | K.Completed -> ()
  | K.Preempted -> raise (B.Boot_failure (what ^ ": preempted during setup"))
  | K.Failed e -> raise (B.Boot_failure (what ^ ": " ^ e))

(* Park [n] low-priority senders on the endpoint at [ep_cptr], sending
   through [cptr_of i] (a badged or plain endpoint cap). *)
let park_senders env ~n ~first_slot ~cptr_of =
  for i = 0 to n - 1 do
    let sender = B.spawn_thread env ~priority:50 ~dest:(first_slot + i) in
    B.make_runnable env sender;
    K.force_run env.B.k sender;
    expect_done "park sender"
      (K.kernel_entry env.B.k
         (K.Ev_send
            { ep = cptr_of i; msg_len = 1; extra_caps = []; blocking = true }))
  done;
  K.force_run env.B.k env.B.root_tcb

let setup_ep_delete env sz =
  let ep = B.spawn_endpoint env ~dest:10 in
  park_senders env ~n:sz.sz_waiters ~first_slot:20 ~cptr_of:(fun _ -> B.cptr 10);
  {
    d_event = K.Ev_invoke (K.Inv_delete { target = B.cptr 10 });
    d_initiator = env.B.root_tcb;
    d_measure = (fun () -> (if ep.ep_active then 1 else 0) + queue_len ep);
  }

let setup_badged_abort env sz =
  let ep = B.spawn_endpoint env ~dest:10 in
  let mint dest badge =
    expect_done "mint badged cap"
      (K.run_to_completion env.B.k
         (K.Ev_invoke
            (K.Inv_copy
               {
                 src = B.cptr 10;
                 dest_slot = env.B.root_cnode.cn_slots.(dest);
                 badge = Some badge;
               })))
  in
  mint 11 7;
  mint 12 9;
  (* Alternate badges so the abort must scan past non-matching waiters. *)
  park_senders env ~n:sz.sz_abort_waiters ~first_slot:20 ~cptr_of:(fun i ->
      B.cptr (if i mod 2 = 0 then 11 else 12));
  {
    d_event = K.Ev_invoke (K.Inv_cancel_badged_sends { ep = B.cptr 10; badge = 7 });
    d_initiator = env.B.root_tcb;
    d_measure =
      (fun () ->
        match ep.ep_abort with None -> 0 | Some _ -> abort_scan_len ep);
  }

let setup_retype_clear env sz =
  let ut =
    match env.B.ut_slot.cap with
    | Untyped_cap ut -> ut
    | _ -> raise (B.Boot_failure "no boot untyped")
  in
  let dest_slots =
    [ env.B.root_cnode.cn_slots.(40); env.B.root_cnode.cn_slots.(41) ]
  in
  let uncleared () =
    match ut.ut_creating with
    | None -> 0
    | Some cr ->
        List.fold_left
          (fun acc (_, obj) ->
            acc + Sel4.Objects.size_of obj - Sel4.Objects.cleared_of obj)
          0 cr.cr_entries
  in
  {
    d_event =
      K.Ev_invoke
        (K.Inv_retype
           {
             ut = B.ut_cptr;
             obj_type = Frame_object sz.sz_frame_bits;
             count = 2;
             dest_slots;
           });
    d_initiator = env.B.root_tcb;
    d_measure = uncleared;
  }

let setup_vspace_delete env sz =
  let slot i = env.B.root_cnode.cn_slots.(i) in
  ignore (B.retype_syscall env Page_directory_object ~count:1 ~dest:30);
  ignore (B.retype_syscall env Page_table_object ~count:1 ~dest:31);
  ignore (B.retype_syscall env (Frame_object 12) ~count:sz.sz_ptes ~dest:32);
  ignore
    (B.retype_syscall env (Frame_object 20) ~count:sz.sz_sections
       ~dest:(32 + sz.sz_ptes));
  let pd =
    match (slot 30).cap with
    | Page_directory_cap { pd; _ } -> pd
    | _ -> raise (B.Boot_failure "no pd")
  in
  expect_done "map pt"
    (K.run_to_completion env.B.k
       (K.Ev_invoke
          (K.Inv_map_page_table { pt = B.cptr 31; pd = B.cptr 30; vaddr = 0 })));
  for i = 0 to sz.sz_ptes - 1 do
    expect_done "map frame"
      (K.run_to_completion env.B.k
         (K.Ev_invoke
            (K.Inv_map_frame
               { frame = B.cptr (32 + i); pd = B.cptr 30; vaddr = i * 4096 })))
  done;
  for i = 0 to sz.sz_sections - 1 do
    expect_done "map section"
      (K.run_to_completion env.B.k
         (K.Ev_invoke
            (K.Inv_map_frame
               {
                 frame = B.cptr (32 + sz.sz_ptes + i);
                 pd = B.cptr 30;
                 vaddr = (1 + i) * 0x100000;
               })))
  done;
  let live_mappings () =
    let pt_live pt =
      let n = ref 0 in
      for j = 0 to pt_entries_count - 1 do
        if pt.pt_entries.(j) <> Pte_invalid || pt.pt_shadow.(j) <> None then
          incr n
      done;
      !n
    in
    let n = ref 0 in
    for i = 0 to kernel_pde_first - 1 do
      match pd.pd_entries.(i) with
      | Pde_invalid -> if pd.pd_shadow.(i) <> None then incr n
      | Pde_section _ -> incr n
      | Pde_page_table pt -> n := !n + 1 + pt_live pt
      | Pde_kernel -> ()
    done;
    !n
  in
  {
    d_event = K.Ev_invoke (K.Inv_delete { target = B.cptr 30 });
    d_initiator = env.B.root_tcb;
    d_measure = live_mappings;
  }

let setup env sz = function
  | Ep_delete -> setup_ep_delete env sz
  | Badged_abort -> setup_badged_abort env sz
  | Retype_clear -> setup_retype_clear env sz
  | Vspace_delete -> setup_vspace_delete env sz

(* --- state digest --- *)

(* The canonical rendering lives in {!Sel4.Digest} (shared with the
   schedule explorer and the soak simulator); the campaign keeps its
   historical name for it. *)
let digest_of = Sel4.Digest.of_kernel

(* --- one injected run --- *)

type run_stats = { rs_digest : string; rs_restarts : int; rs_polls : int }

(* Replay [op] under [build], asserting a timer interrupt at every poll
   index in [schedule].  After every kernel exit the invariant catalogue
   runs and the progress measure is checked; the result is the final-state
   digest, for differential comparison. *)
let run_one ?cpu ~build ~op ~sz ~schedule () =
  match
    let env = B.boot ?cpu build in
    let d = setup env sz op in
    let k = env.B.k in
    K.set_injection_hook k (Some (fun poll -> List.mem poll schedule));
    let max_entries = 4096 + (4 * List.length schedule) in
    let check_invariants () =
      match Sel4.Invariants.check_result k with
      | Ok () -> Ok ()
      | Error ms -> Error ("invariants: " ^ String.concat "; " ms)
    in
    let rec go entries last_preempt_measure =
      if entries > max_entries then
        Error "runaway restart loop (no forward progress?)"
      else begin
        K.force_run k d.d_initiator;
        let outcome = K.kernel_entry k d.d_event in
        match check_invariants () with
        | Error _ as e -> e
        | Ok () -> (
            match outcome with
            | K.Failed e -> Error ("kernel reported: " ^ e)
            | K.Completed ->
                let m = d.d_measure () in
                if m <> 0 then
                  Error (Fmt.str "completed with residual measure %d" m)
                else begin
                  let polls = K.preempt_polls k in
                  K.set_injection_hook k None;
                  Ok
                    {
                      rs_digest = digest_of k;
                      rs_restarts = entries - 1;
                      rs_polls = polls;
                    }
                end
            | K.Preempted ->
                let m = d.d_measure () in
                (match last_preempt_measure with
                | Some lm when m >= lm ->
                    Error
                      (Fmt.str
                         "restart progress violated: measure %d after %d \
                          (must strictly decrease)"
                         m lm)
                | _ -> go (entries + 1) (Some m)))
      end
    in
    go 1 None
  with
  | result -> result
  | exception B.Boot_failure e -> Error ("setup: " ^ e)
  | exception Sel4.Invariants.Violation e -> Error ("invariant raised: " ^ e)

(* --- shrinking --- *)

(* Greedy one-at-a-time removal, restarting the scan after every
   successful removal: the result is 1-minimal (removing any single
   remaining injection no longer reproduces the failure). *)
let shrink ~fails schedule =
  let remove_nth i l = List.filteri (fun j _ -> j <> i) l in
  let rec minimise sched =
    let rec scan i =
      if i >= List.length sched then sched
      else
        let cand = remove_nth i sched in
        if fails cand then minimise cand else scan (i + 1)
    in
    scan 0
  in
  minimise schedule

(* --- the campaign --- *)

(* Run one schedule under all variants; return the first failure, as
   (variant, reason), checking each run's own invariants and progress,
   then digest agreement with the uninterrupted baseline and across
   variants. *)
let run_schedule ~builds ~op ~sz ~baseline_digest ~stats ~note_rs schedule =
  let rec go acc = function
    | [] -> (
        match List.rev acc with
        | [] -> None
        | (v0, d0) :: rest -> (
            if d0 <> baseline_digest then
              Some
                ( variant_name v0.Sel4.Build.sched,
                  "final state differs from uninterrupted run" )
            else
              match
                List.find_opt (fun (_, d) -> d <> d0) rest
              with
              | Some (v, _) ->
                  Some
                    ( "differential",
                      Fmt.str "final state diverges between %s and %s"
                        (variant_name v0.Sel4.Build.sched)
                        (variant_name v.Sel4.Build.sched) )
              | None -> None))
    | build :: more -> (
        Obs.Metrics.incr m_runs;
        incr stats;
        match run_one ~build ~op ~sz ~schedule () with
        | Error e -> Some (variant_name build.Sel4.Build.sched, e)
        | Ok rs ->
            note_rs rs.rs_restarts;
            go ((build, rs.rs_digest) :: acc) more)
  in
  go [] builds

let max_restarts_seen = ref 0

let note_restarts n = if n > !max_restarts_seen then max_restarts_seen := n

(* Replay a failing (variant, schedule) with the cycle-accurate tracer
   attached and render the event timeline for the report. *)
let replay_timeline ~config ~build ~op ~sz ~schedule =
  let cpu = Hw.Cpu.create config in
  let buf = Obs.Trace.create ~capacity:8192 () in
  Hw.Cpu.set_trace_buffer cpu buf;
  ignore (run_one ~cpu ~build ~op ~sz ~schedule ());
  Fmt.str "%a" Obs.Trace.pp_timeline buf

let op_campaign ~config ~base_build ~sz ~rng ~random_schedules ~planted op =
  Obs.Metrics.incr m_campaigns;
  let builds = variants ~base:base_build op in
  let runs = ref 0 in
  let failures = ref [] in
  let op_max = ref 0 in
  let note_rs n =
    note_restarts n;
    if n > !op_max then op_max := n
  in
  let planted_reason schedule =
    match planted with None -> None | Some f -> f op schedule
  in
  (* The failure oracle a schedule is judged (and shrunk) by. *)
  let failure_of ~baseline_digest schedule =
    match planted_reason schedule with
    | Some reason -> Some ("planted", reason)
    | None ->
        run_schedule ~builds ~op ~sz ~baseline_digest ~stats:runs ~note_rs
          schedule
  in
  (* Uninterrupted reference runs: poll count and baseline digest, which
     must already agree across the scheduler variants. *)
  let baselines =
    List.map
      (fun build ->
        Obs.Metrics.incr m_runs;
        incr runs;
        (build, run_one ~build ~op ~sz ~schedule:[] ()))
      builds
  in
  let record ~variant ~schedule ~min_schedule ~reason ~build =
    Obs.Metrics.incr m_failures;
    let timeline =
      replay_timeline ~config ~build ~op ~sz ~schedule:min_schedule
    in
    failures :=
      {
        f_op = op;
        f_variant = variant;
        f_schedule = schedule;
        f_min_schedule = min_schedule;
        f_reason = reason;
        f_timeline = timeline;
      }
      :: !failures
  in
  let points = ref 0 in
  (match
     List.find_opt (fun (_, r) -> Result.is_error r) baselines
   with
  | Some (build, Error reason) ->
      record
        ~variant:(variant_name build.Sel4.Build.sched)
        ~schedule:[] ~min_schedule:[] ~reason ~build
  | _ -> (
      let ok_baselines =
        List.filter_map
          (fun (b, r) -> match r with Ok rs -> Some (b, rs) | Error _ -> None)
          baselines
      in
      let b0, rs0 = List.hd ok_baselines in
      List.iter (fun (_, rs) -> note_rs rs.rs_restarts) ok_baselines;
      match
        List.find_opt
          (fun (_, rs) ->
            rs.rs_polls <> rs0.rs_polls || rs.rs_digest <> rs0.rs_digest)
          (List.tl ok_baselines)
      with
      | Some (b, rs) ->
          record ~variant:"differential" ~schedule:[] ~min_schedule:[]
            ~reason:
              (Fmt.str
                 "uninterrupted runs diverge between %s and %s (polls %d vs \
                  %d%s)"
                 (variant_name b0.Sel4.Build.sched)
                 (variant_name b.Sel4.Build.sched)
                 rs0.rs_polls rs.rs_polls
                 (if rs.rs_digest <> rs0.rs_digest then ", digests differ"
                  else ""))
            ~build:b
      | None ->
          let n = rs0.rs_polls in
          points := n;
          Obs.Metrics.incr ~by:n m_points;
          let exhaustive = List.init n (fun k -> [ k + 1 ]) in
          let seeded =
            if n < 2 then []
            else List.init random_schedules (fun _ -> random_schedule rng n)
          in
          let baseline_digest = rs0.rs_digest in
          List.iter
            (fun schedule ->
              match failure_of ~baseline_digest schedule with
              | None -> ()
              | Some (variant, reason) ->
                  let fails cand =
                    Obs.Metrics.incr m_shrink_runs;
                    Option.is_some (failure_of ~baseline_digest cand)
                  in
                  let min_schedule = shrink ~fails schedule in
                  record ~variant ~schedule ~min_schedule ~reason ~build:b0)
            (exhaustive @ seeded)));
  {
    o_op = op;
    o_points = !points;
    o_runs = !runs;
    o_max_restarts = !op_max;
    o_failures = List.rev !failures;
  }

let run_campaign ?(smoke = false) ?(seed = 42) ?(ops = all_ops) ?planted
    (ctx : Sel4_rt.Analysis_ctx.t) =
  max_restarts_seen := 0;
  let sz = sizes ~smoke in
  let rng = Sel4_rt.Prng.create seed in
  let random_schedules = if smoke then 5 else 40 in
  let reports =
    List.map
      (op_campaign ~config:ctx.Sel4_rt.Analysis_ctx.config
         ~base_build:ctx.Sel4_rt.Analysis_ctx.build ~sz ~rng ~random_schedules
         ~planted)
      ops
  in
  Obs.Metrics.set_counter m_max_restarts !max_restarts_seen;
  {
    r_seed = seed;
    r_smoke = smoke;
    r_ops = reports;
    r_total_runs = List.fold_left (fun a o -> a + o.o_runs) 0 reports;
  }

let ok r = List.for_all (fun o -> o.o_failures = []) r.r_ops

let pp_report ppf r =
  Fmt.pf ppf "fault-injection campaign: seed %d, %s, %d runs@." r.r_seed
    (if r.r_smoke then "smoke" else "full")
    r.r_total_runs;
  List.iter
    (fun o ->
      Fmt.pf ppf "  %-14s %3d points, %4d runs, max %d restarts: %s@."
        (op_name o.o_op) o.o_points o.o_runs o.o_max_restarts
        (if o.o_failures = [] then "ok"
         else Fmt.str "%d FAILURES" (List.length o.o_failures));
      List.iter
        (fun f ->
          Fmt.pf ppf "    [%s] schedule %a shrunk to %a: %s@." f.f_variant
            Fmt.(Dump.list int)
            f.f_schedule
            Fmt.(Dump.list int)
            f.f_min_schedule f.f_reason;
          if f.f_timeline <> "" then
            Fmt.pf ppf "    timeline of minimal replay:@.%s@." f.f_timeline)
        o.o_failures)
    r.r_ops

(* --- machine-readable report --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_ints l =
  "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"

(* The envelope (campaign/ok/total_runs + per-unit failure arrays) is
   shared with {!Explore.to_json}, so CI tooling parses both the same
   way. *)
let to_json r =
  let b = Buffer.create 1024 in
  let addf fmt = Fmt.kstr (Buffer.add_string b) fmt in
  addf "{\n";
  addf "  \"campaign\": \"inject\",\n";
  addf "  \"seed\": %d,\n" r.r_seed;
  addf "  \"smoke\": %b,\n" r.r_smoke;
  addf "  \"ok\": %b,\n" (ok r);
  addf "  \"total_runs\": %d,\n" r.r_total_runs;
  addf "  \"ops\": [\n";
  List.iteri
    (fun i o ->
      addf "    {\"name\": \"%s\", \"points\": %d, \"runs\": %d, " (op_name o.o_op)
        o.o_points o.o_runs;
      addf "\"max_restarts\": %d, \"failures\": [" o.o_max_restarts;
      List.iteri
        (fun j f ->
          addf "%s\n      {\"variant\": \"%s\", \"schedule\": %s, "
            (if j > 0 then "," else "")
            (json_escape f.f_variant) (json_ints f.f_schedule);
          addf "\"min_schedule\": %s, \"reason\": \"%s\"}" (json_ints f.f_min_schedule)
            (json_escape f.f_reason))
        o.o_failures;
      addf "%s]}%s\n"
        (if o.o_failures = [] then "" else "\n    ")
        (if i < List.length r.r_ops - 1 then "," else ""))
    r.r_ops;
  addf "  ]\n}\n";
  Buffer.contents b
