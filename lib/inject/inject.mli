(** Exhaustive preemption-point fault injection with differential
    scheduler checking.

    For each long-running kernel operation — endpoint deletion, badged-IPC
    abort, untyped retype with preemptible clearing, and address-space
    deletion — the campaign replays the operation injecting a timer
    interrupt at the k-th polled preemption point, for every k an
    uninterrupted reference run polls (an exhaustive single-injection
    sweep), plus seeded multi-interrupt schedules drawn from a splitmix
    PRNG.  Injection is by poll index, not by cycle count, so a schedule
    replays identically across scheduler variants.

    After every kernel exit the full {!Sel4.Invariants} catalogue runs,
    and the operation's progress measure (queued waiters, abort-scan
    length, uncleared bytes, live mappings) must strictly decrease between
    consecutive preemptions — the restart-progress guarantee of
    Sections 3.3-3.6.  The final kernel state is digested (queues, CDT,
    mappings, cleared ranges) and must agree across the lazy, Benno, and
    Benno+bitmap scheduler variants {e and} with the uninterrupted run.
    Failing schedules are shrunk to a 1-minimal injection schedule and
    reported with an {!Obs.Trace} timeline of the replayed failure. *)

(** {1 Operations under test} *)

type op =
  | Ep_delete  (** endpoint deletion, one dequeue per point (§3.3) *)
  | Badged_abort  (** badged-send cancellation, cursor on the endpoint (§3.4) *)
  | Retype_clear  (** retype with chunked object clearing (§3.5) *)
  | Vspace_delete  (** shadow address-space teardown, per-entry points (§3.6) *)

val all_ops : op list
val op_name : op -> string

(** {1 Campaign results} *)

type failure = {
  f_op : op;
  f_variant : string;  (** scheduler variant (or ["differential"]) *)
  f_schedule : int list;  (** injection schedule as first observed *)
  f_min_schedule : int list;  (** 1-minimal schedule after shrinking *)
  f_reason : string;
  f_timeline : string;  (** rendered {!Obs.Trace} timeline of a replay *)
}

type op_report = {
  o_op : op;
  o_points : int;  (** preemption points polled by the reference run *)
  o_runs : int;  (** injection runs executed, across all variants *)
  o_max_restarts : int;  (** worst restart count over all runs *)
  o_failures : failure list;
}

type report = {
  r_seed : int;
  r_smoke : bool;
  r_ops : op_report list;
  r_total_runs : int;
}

val run_campaign :
  ?smoke:bool ->
  ?seed:int ->
  ?ops:op list ->
  ?planted:(op -> int list -> string option) ->
  Sel4_rt.Analysis_ctx.t ->
  report
(** Run the full campaign.  The context supplies the base kernel build
    (each scheduler variant is derived from it, with preemption points
    forced on) and the hardware configuration used to replay failures
    under the tracer.  [smoke] shrinks the workload sizes and the number
    of random schedules for a fast fixed-seed CI run.  [planted] is a
    test-only fault oracle: when it returns [Some reason] for a schedule,
    that schedule is treated as failing — the hook the shrinker tests use
    to plant a deterministic bug. *)

val ok : report -> bool
val pp_report : report Fmt.t

val to_json : report -> string
(** Machine-readable campaign report.  The envelope — [campaign], [ok],
    [total_runs], and per-unit failure arrays — is shared with
    [Explore.to_json], so CI tooling parses both reports the same way. *)

(** {1 Workloads exposed for the race analyser and schedule explorer}

    The audit mode of [Race] replays these drivers with an access recorder
    attached, and [Explore] interleaves them with interfering client
    actions; both reuse the exact workloads the injection campaign
    validates, so their conclusions transfer. *)

type sizes = {
  sz_waiters : int;  (** blocked senders queued for deletion *)
  sz_abort_waiters : int;  (** blocked badged senders *)
  sz_frame_bits : int;  (** retyped frame size (cleared in chunks) *)
  sz_ptes : int;  (** small pages mapped through the page table *)
  sz_sections : int;  (** 1 MiB sections mapped in the directory *)
}

val sizes : smoke:bool -> sizes

type driver = {
  d_event : Sel4.Kernel.event;  (** the long-running operation *)
  d_initiator : Sel4.Ktypes.tcb;  (** thread that issues (and restarts) it *)
  d_measure : unit -> int;
      (** progress toward completion; must strictly decrease between
          consecutive preemptions and reach 0 on completion *)
}

val setup : Sel4.Boot.env -> sizes -> op -> driver
(** Populate a freshly booted environment with the operation's workload
    (parked senders, badged caps, mapped frames, ...) and return its
    driver.  Raises [Sel4.Boot.Boot_failure] if the setup syscalls fail. *)

val variant_name : Sel4.Build.sched_variant -> string

val variants : base:Sel4.Build.t -> op -> Sel4.Build.t list
(** The scheduler variants a schedule is differentially replayed under
    (lazy, Benno, Benno+bitmap), derived from [base] with preemption
    points forced on — and, for {!Vspace_delete}, the shadow vspace
    design, the only one with preemptible teardown. *)

(** {1 Pieces exposed for tests} *)

val shrink : fails:(int list -> bool) -> int list -> int list
(** Greedy one-at-a-time reduction of a failing schedule to a 1-minimal
    one: removing any single remaining injection no longer fails.
    Precondition: [fails schedule]. *)

val digest_of : Sel4.Kernel.t -> string
(** Canonical rendering of the scheduler-independent kernel state: object
    registry (queues, abort cursors, watermarks, cleared ranges, page
    tables), capability slots and CDT shape.  Run-queue contents are
    deliberately excluded — lazy scheduling parks blocked threads in the
    queues by design. *)
