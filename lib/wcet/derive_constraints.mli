(** Mechanical derivation and audit of the Section 5.2 manual constraints.

    The kernel's branch logic is re-expressed as small TAC decision
    models (the same move Section 5.3 makes for loops), each carrying a
    map from model block labels to kernel CFG block labels.  The
    {!Tac.Absint} fixpoint over a model then yields constraints over the
    kernel blocks:

    - {e exclusive paths}: two mapped blocks whose in-states assign
      disjoint abstract values to a shared (run-constant) register can
      never both execute in one invocation — a [Conflicts_with];
    - {e equal guards}: two branch arms guarded by syntactically equal
      run-constant conditions, each branch executing exactly once per
      invocation, execute equally often — a [Consistent_with] (the
      Figure 6 duplicated-switch pattern);
    - {e loop trip count}: a mapped block inside a single depth-1 loop
      with an interval-derived trip bound — an [Executes_at_most].

    Every manual constraint additionally receives a verdict: [Proved]
    when a derivation subsumes it, [Refuted] when exhaustive concrete
    execution of a covering model (over its declared finite parameter
    domains) exhibits a violating run, [Unknown] otherwise. *)

type model = {
  dm_name : string;
  dm_func : string;  (** kernel CFG function the model describes *)
  dm_program : Tac.Lang.program;
  dm_labels : (string * string) list;
      (** model block label → kernel block label *)
  dm_calls_bound : int;
      (** declared maximum invocations of [dm_func] per kernel
          activation; scales derived global caps.  Conflict and
          consistency constraints are per-invocation and do not use
          it. *)
}

type rule = Exclusive_paths | Equal_guards | Loop_trip_count

type derivation = { dv_model : string; dv_rule : rule; dv_note : string }

type verdict = Proved | Refuted | Unknown

type audit_line = {
  al_constraint : User_constraint.t;
  al_verdict : verdict;
  al_evidence : string;
}

type report = {
  rep_derived : (User_constraint.t * derivation) list;
  rep_audit : audit_line list;
  rep_iterations : int;  (** absint iterations over all models *)
  rep_widenings : int;
  rep_narrowings : int;
}

val derive : model list -> report
(** Derivations only; the audit list is empty. *)

val audit : models:model list -> manual:User_constraint.t list -> report
(** Derivations plus a verdict per manual constraint.  Updates the
    [constraints.*] and [absint.*] metrics counters. *)

val rule_name : rule -> string
val verdict_name : verdict -> string
val pp_rule : rule Fmt.t
val pp_verdict : verdict Fmt.t
val pp_derived : (User_constraint.t * derivation) Fmt.t
val pp_audit_line : audit_line Fmt.t
val pp_report : report Fmt.t
