(* Implicit Path Enumeration Technique (Li & Malik), as used by Chronos and
   by the paper's analysis (Section 5.2).

   The kernel program is virtually inlined into one call-free CFG; the
   cache analysis assigns every block a sound cycle cost; and the worst
   case is the solution of an integer linear program over block execution
   counts x_b and edge traversal counts d_e:

     maximise   sum_b cost_b * x_b
     subject to structural flow conservation (x_b equals the flow in and
     the flow out of b, with one unit of virtual flow entering at the entry
     block and leaving at the exits), loop bounds relating header counts to
     the flow entering the loop, and the manual constraint forms of
     {!User_constraint}.

   The pipeline is split in two so the expensive prefix — virtual inlining,
   loop detection and the cache-analysis fixpoint, which depend only on the
   program, hardware configuration and pinned lines — is computed once
   ({!prepare}) and shared across every ILP variant run over it
   ({!analyse_prepared}): with and without the manual constraints, and with
   any set of forced path counts (Section 6.2). *)

type loop_bound = { func : string; header : string; bound : int }

type spec = {
  program : Timing.t Cfg.Flowgraph.program;
  bounds : loop_bound list;
  constraints : User_constraint.t list;
  derived : (User_constraint.t * Derive_constraints.derivation) list;
}

type sources = [ `All | `Manual | `Derived ]

type result = {
  wcet : int;
  block_counts : int array;
  inlined : Timing.t Cfg.Inline.t;
  costs : Cache_analysis.t;
  ilp_vars : int;
  ilp_constraints : int;
  bb_nodes : int;
  lp_solves : int;
  elapsed_s : float;
  ilp_solution : int array;
  edge_counts : ((int * int) * int) list;
  binding_constraints : (string * int) list;
}

exception Unbounded_loop of string
exception No_solution of string

(* Label of the original source block of an inlined block. *)
let source_label program (origin : Cfg.Inline.origin) =
  let fn = Cfg.Flowgraph.find_fn program origin.Cfg.Inline.func in
  (Cfg.Flowgraph.block fn origin.Cfg.Inline.orig_id).Cfg.Flowgraph.label

(* Instance ids of every block of every function, grouped by source
   function and calling context: each entry is
   (context, [(inlined id, source label, is function entry)]) sorted by
   context.  One pass over the origin table covers all functions; the
   result is immutable and shared by every analysis over this prefix. *)
let compute_contexts inlined program =
  let by_func : (string, (string, (int * string * bool) list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun id (o : Cfg.Inline.origin) ->
      let label = source_label program o in
      let entry =
        (Cfg.Flowgraph.find_fn program o.Cfg.Inline.func).Cfg.Flowgraph.entry
        = o.Cfg.Inline.orig_id
      in
      let by_ctx =
        match Hashtbl.find_opt by_func o.Cfg.Inline.func with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 8 in
            Hashtbl.add by_func o.Cfg.Inline.func h;
            h
      in
      let prev =
        try Hashtbl.find by_ctx o.Cfg.Inline.context with Not_found -> []
      in
      Hashtbl.replace by_ctx o.Cfg.Inline.context ((id, label, entry) :: prev))
    inlined.Cfg.Inline.origins;
  let table = Hashtbl.create 16 in
  Hashtbl.iter
    (fun func by_ctx ->
      Hashtbl.replace table func
        (Hashtbl.fold (fun ctx blocks acc -> (ctx, blocks) :: acc) by_ctx []
        |> List.sort compare))
    by_func;
  table

type prepared = {
  spec : spec;
  config : Hw.Config.t;
  pinned_code : int list;
  pinned_data : int list;
  inlined : Timing.t Cfg.Inline.t;
  costs : Cache_analysis.t;
  loops : Cfg.Loops.t;
  preds : int list array;
  contexts : (string, (string * (int * string * bool) list) list) Hashtbl.t;
      (* read-only after [prepare]; safe to share across domains *)
  prep_elapsed_s : float;
}

(* Per-stage wall-time spans for the metrics registry (bench --json,
   sel4rt metrics).  Wall time never feeds the event tracer. *)
let span_prepare = Obs.Metrics.histogram "ipet.prepare"
let span_cache = Obs.Metrics.histogram "ipet.cache_analysis"
let span_build = Obs.Metrics.histogram "ipet.ilp_build"
let span_solve = Obs.Metrics.histogram "ipet.ilp_solve"

let prepare ~config ?(pinned_code = []) ?(pinned_data = []) (spec : spec) =
  Obs.Metrics.span span_prepare @@ fun () ->
  let started = Clock.now_s () in
  let inlined = Cfg.Inline.inline spec.program in
  let fn = inlined.Cfg.Inline.fn in
  let costs =
    Obs.Metrics.span span_cache (fun () ->
        Cache_analysis.analyse ~config ~pinned_code ~pinned_data fn)
  in
  let loops = Cfg.Loops.compute fn in
  let preds = Cfg.Flowgraph.preds fn in
  let contexts = compute_contexts inlined spec.program in
  {
    spec;
    config;
    pinned_code;
    pinned_data;
    inlined;
    costs;
    loops;
    preds;
    contexts;
    prep_elapsed_s = Clock.elapsed_s ~since:started;
  }

(* Constraints selected for one ILP variant, each tagged with its
   provenance for the constraint-row label.  Derived constraints that
   structurally duplicate a manual one are dropped under [`All]. *)
let selected_constraints (spec : spec) ~use_constraints ~(sources : sources) =
  if not use_constraints then []
  else
    let manual = List.map (fun c -> (c, "manual")) spec.constraints in
    let derived =
      List.map
        (fun (c, (d : Derive_constraints.derivation)) ->
          ( c,
            Fmt.str "derived %s/%s" d.Derive_constraints.dv_model
              (Derive_constraints.rule_name d.Derive_constraints.dv_rule) ))
        spec.derived
    in
    match sources with
    | `Manual -> manual
    | `Derived -> derived
    | `All ->
        manual
        @ List.filter
            (fun (c, _) -> not (List.mem c spec.constraints))
            derived

let analyse_prepared ?(use_constraints = true) ?(sources : sources = `All)
    ?(forced = ([] : (string * string * int) list)) ?warm_start (p : prepared) =
  let started = Clock.now_s () in
  let spec = p.spec in
  let inlined = p.inlined in
  let fn = inlined.Cfg.Inline.fn in
  let n = Cfg.Flowgraph.num_blocks fn in
  let costs = p.costs in
  let instances_of func =
    match Hashtbl.find_opt p.contexts func with Some l -> l | None -> []
  in
  let problem = Ilp.Problem.create () in
  let x = Array.init n (fun b -> Ilp.Problem.var problem (Fmt.str "x%d" b)) in
  (* Edge variables, plus virtual entry/exit edges. *)
  let edges = Hashtbl.create 64 in
  Array.iter
    (fun (b : Timing.t Cfg.Flowgraph.block) ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem edges (b.Cfg.Flowgraph.id, s)) then
            Hashtbl.replace edges (b.Cfg.Flowgraph.id, s)
              (Ilp.Problem.var problem
                 (Fmt.str "d%d_%d" b.Cfg.Flowgraph.id s)))
        b.Cfg.Flowgraph.succs)
    fn.Cfg.Flowgraph.blocks;
  let edge_var e = Hashtbl.find edges e in
  let entry_var = Ilp.Problem.var problem "d_entry" in
  let exit_vars =
    List.map
      (fun b -> (b, Ilp.Problem.var problem (Fmt.str "d_exit%d" b)))
      (Cfg.Flowgraph.exits fn)
  in
  Ilp.Problem.add_eq ~label:"one entry" problem [ (1, entry_var) ] 1;
  Ilp.Problem.add_eq ~label:"one exit" problem
    (List.map (fun (_, v) -> (1, v)) exit_vars)
    1;
  let preds = p.preds in
  Array.iter
    (fun (b : Timing.t Cfg.Flowgraph.block) ->
      let id = b.Cfg.Flowgraph.id in
      let inflow =
        List.map (fun pr -> (1, edge_var (pr, id))) preds.(id)
        @ if id = fn.Cfg.Flowgraph.entry then [ (1, entry_var) ] else []
      in
      let outflow =
        List.map (fun s -> (1, edge_var (id, s))) b.Cfg.Flowgraph.succs
        @
        match List.assoc_opt id exit_vars with
        | Some v -> [ (1, v) ]
        | None -> []
      in
      Ilp.Problem.add_eq
        ~label:(Fmt.str "flow in %d" id)
        problem
        ((1, x.(id)) :: List.map (fun (c, v) -> (-c, v)) inflow)
        0;
      Ilp.Problem.add_eq
        ~label:(Fmt.str "flow out %d" id)
        problem
        ((1, x.(id)) :: List.map (fun (c, v) -> (-c, v)) outflow)
        0)
    fn.Cfg.Flowgraph.blocks;
  (* Loop bounds: header count bounded by (bound * flow entering the
     loop).  The bound counts header visits per loop entry. *)
  List.iter
    (fun (l : Cfg.Loops.loop) ->
      let origin = Cfg.Inline.origin inlined l.Cfg.Loops.header in
      let label = source_label spec.program origin in
      let bound =
        match
          List.find_opt
            (fun b -> b.func = origin.Cfg.Inline.func && b.header = label)
            spec.bounds
        with
        | Some b -> b.bound
        | None ->
            raise
              (Unbounded_loop
                 (Fmt.str "%s/%s (inlined block %d)" origin.Cfg.Inline.func
                    label l.Cfg.Loops.header))
      in
      let entering = Cfg.Loops.entry_edges fn l in
      Ilp.Problem.add_le
        ~label:
          (Fmt.str "loop bound %s/%s <= %d per entry" origin.Cfg.Inline.func
             label bound)
        problem
        ((1, x.(l.Cfg.Loops.header))
        :: List.map (fun e -> (-bound, edge_var e)) entering)
        0)
    (Cfg.Loops.loops p.loops);
  (* User constraints, one per calling context (Section 5.2). *)
  let find_in_ctx blocks label =
    List.filter_map (fun (id, l, _) -> if l = label then Some id else None) blocks
  in
  let entry_of_ctx blocks =
    List.filter_map (fun (id, _, is_entry) -> if is_entry then Some id else None) blocks
  in
  let constraints = selected_constraints spec ~use_constraints ~sources in
  List.iter
    (fun (c, src) ->
      let clabel = Fmt.str "[%s] %a" src User_constraint.pp c in
      match c with
      | User_constraint.Conflicts_with { func; a; b } ->
          List.iter
            (fun (_ctx, blocks) ->
              let xa = find_in_ctx blocks a
              and xb = find_in_ctx blocks b
              and entry = entry_of_ctx blocks in
              if xa <> [] && xb <> [] then
                Ilp.Problem.add_le ~label:clabel problem
                  (List.map (fun id -> (1, x.(id))) (xa @ xb)
                  @ List.map (fun id -> (-1, x.(id))) entry)
                  0)
            (instances_of func)
      | User_constraint.Consistent_with { func; a; b } ->
          List.iter
            (fun (_ctx, blocks) ->
              let xa = find_in_ctx blocks a and xb = find_in_ctx blocks b in
              if xa <> [] && xb <> [] then
                Ilp.Problem.add_eq ~label:clabel problem
                  (List.map (fun id -> (1, x.(id))) xa
                  @ List.map (fun id -> (-1, x.(id))) xb)
                  0)
            (instances_of func)
      | User_constraint.Executes_at_most { func; block; times } ->
          let all =
            List.concat_map
              (fun (_ctx, blocks) -> find_in_ctx blocks block)
              (instances_of func)
          in
          if all <> [] then
            Ilp.Problem.add_le ~label:clabel problem
              (List.map (fun id -> (1, x.(id))) all)
              times)
    constraints;
  (* Forced path counts (Section 6.2: computing the execution time of a
     specific realisable path by adding constraints to the ILP). *)
  List.iter
    (fun (func, label, count) ->
      let all =
        List.concat_map
          (fun (_ctx, blocks) -> find_in_ctx blocks label)
          (instances_of func)
      in
      if all <> [] then
        Ilp.Problem.add_eq
          ~label:(Fmt.str "forced %s/%s = %d" func label count)
          problem
          (List.map (fun id -> (1, x.(id))) all)
          count)
    forced;
  Ilp.Problem.set_objective problem
    (Array.to_list
       (Array.mapi (fun b v -> ((Cache_analysis.cost costs b).cycles, v)) x));
  let stats = { Ilp.Branch_bound.nodes = 0; lp_solves = 0 } in
  Obs.Metrics.observe span_build (Clock.elapsed_s ~since:started);
  let solve_started = Clock.now_s () in
  let solved = Ilp.Branch_bound.solve ?warm_start ~stats problem in
  Obs.Metrics.observe span_solve (Clock.elapsed_s ~since:solve_started);
  match solved with
  | Ilp.Branch_bound.Optimal { objective; values } ->
      (* The optimal basis, kept rather than discarded: per-edge traversal
         counts at the optimum (sorted for determinism) and the inequality
         rows that are tight there — the loop bounds and provenance-labelled
         user constraints that actually limit the bound.  Flow-conservation
         [Eq] rows are tight by construction and carry no information, so
         they are skipped. *)
      let edge_counts =
        Hashtbl.fold
          (fun e v acc ->
            let c = values.((v : Ilp.Problem.var :> int)) in
            if c > 0 then (e, c) :: acc else acc)
          edges []
        |> List.sort compare
      in
      let binding_constraints =
        List.filter_map
          (fun (c : Ilp.Problem.cstr) ->
            (* Vacuously binding rows — every variable in the row is zero
               at the optimum (constraints on inlined contexts the
               critical path never enters) — are noise, not explanation. *)
            let touched =
              List.exists
                (fun (_, v) -> values.((v : Ilp.Problem.var :> int)) > 0)
                c.Ilp.Problem.terms
            in
            if
              c.Ilp.Problem.relation <> Ilp.Problem.Eq
              && c.Ilp.Problem.label <> ""
              && touched
              && Ilp.Problem.binding c values
            then
              Some
                ( c.Ilp.Problem.label,
                  Ilp.Problem.eval_terms c.Ilp.Problem.terms values )
            else None)
          (Ilp.Problem.constraints problem)
      in
      {
        wcet = objective;
        block_counts = Array.init n (fun b -> values.((x.(b) :> int)));
        inlined;
        costs;
        ilp_vars = Ilp.Problem.num_vars problem;
        ilp_constraints = Ilp.Problem.num_constraints problem;
        bb_nodes = stats.Ilp.Branch_bound.nodes;
        lp_solves = stats.Ilp.Branch_bound.lp_solves;
        elapsed_s = p.prep_elapsed_s +. Clock.elapsed_s ~since:started;
        ilp_solution = values;
        edge_counts;
        binding_constraints;
      }
  | Ilp.Branch_bound.Infeasible -> raise (No_solution "ILP infeasible")
  | Ilp.Branch_bound.Unbounded -> raise (No_solution "ILP unbounded")

let analyse ~config ?(pinned_code = []) ?(pinned_data = [])
    ?(forced = ([] : (string * string * int) list)) (spec : spec) =
  analyse_prepared ~forced (prepare ~config ~pinned_code ~pinned_data spec)

(* --- persistence: the marshal-safe projection of a result --- *)

type persisted = {
  ps_wcet : int;
  ps_block_counts : int array;
  ps_ilp_vars : int;
  ps_ilp_constraints : int;
  ps_bb_nodes : int;
  ps_lp_solves : int;
  ps_elapsed_s : float;
  ps_ilp_solution : int array;
  ps_edge_counts : ((int * int) * int) list;
  ps_binding_constraints : (string * int) list;
}

let to_persisted (r : result) =
  {
    ps_wcet = r.wcet;
    ps_block_counts = r.block_counts;
    ps_ilp_vars = r.ilp_vars;
    ps_ilp_constraints = r.ilp_constraints;
    ps_bb_nodes = r.bb_nodes;
    ps_lp_solves = r.lp_solves;
    ps_elapsed_s = r.elapsed_s;
    ps_ilp_solution = r.ilp_solution;
    ps_edge_counts = r.edge_counts;
    ps_binding_constraints = r.binding_constraints;
  }

(* The inverse: [inlined] and [costs] come from the (recomputed, content
   -identical) prefix, every solver-derived quantity from the stored
   record.  No ILP is built or solved. *)
let rehydrate (p : prepared) (ps : persisted) =
  let n = Cfg.Flowgraph.num_blocks p.inlined.Cfg.Inline.fn in
  if Array.length ps.ps_block_counts <> n then
    invalid_arg
      (Fmt.str "Ipet.rehydrate: %d persisted block counts for a %d-block CFG"
         (Array.length ps.ps_block_counts)
         n);
  {
    wcet = ps.ps_wcet;
    block_counts = ps.ps_block_counts;
    inlined = p.inlined;
    costs = p.costs;
    ilp_vars = ps.ps_ilp_vars;
    ilp_constraints = ps.ps_ilp_constraints;
    bb_nodes = ps.ps_bb_nodes;
    lp_solves = ps.ps_lp_solves;
    elapsed_s = ps.ps_elapsed_s;
    ilp_solution = ps.ps_ilp_solution;
    edge_counts = ps.ps_edge_counts;
    binding_constraints = ps.ps_binding_constraints;
  }

(* Render the worst-case path as (label, count, per-visit cycles) rows for
   blocks on the path, in block order. *)
let worst_path (result : result) =
  let fn = result.inlined.Cfg.Inline.fn in
  Array.to_list fn.Cfg.Flowgraph.blocks
  |> List.filter_map (fun (b : Timing.t Cfg.Flowgraph.block) ->
         let count = result.block_counts.(b.Cfg.Flowgraph.id) in
         if count = 0 then None
         else
           Some
             ( b.Cfg.Flowgraph.label,
               count,
               (Cache_analysis.cost result.costs b.Cfg.Flowgraph.id).cycles ))
