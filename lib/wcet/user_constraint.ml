(* The three manual constraint forms of Section 5.2:

   - "a conflicts with b in f": the blocks are mutually exclusive within one
     invocation of f (but may each run under different invocations);
   - "a is consistent with b in f": the blocks execute the same number of
     times within any invocation of f;
   - "a executes n times": a global cap over all contexts.

   Blocks are named by their label within their source function; virtual
   inlining multiplies them into one instance per calling context, and the
   constraint is emitted once per context (except the global cap, which sums
   all contexts).  The paper notes these constraints could be discharged as
   proof obligations; here they are plain data that tests can audit. *)

type t =
  | Conflicts_with of { func : string; a : string; b : string }
  | Consistent_with of { func : string; a : string; b : string }
  | Executes_at_most of { func : string; block : string; times : int }

let conflicts ~func a b = Conflicts_with { func; a; b }
let consistent ~func a b = Consistent_with { func; a; b }
let executes_at_most ~func block times =
  (* Not an assert: those vanish under --release, and a negative cap
     would make the ILP silently infeasible. *)
  if times < 0 then
    invalid_arg
      (Fmt.str "User_constraint.executes_at_most: negative count %d for %s.%s"
         times func block);
  Executes_at_most { func; block; times }

let pp ppf = function
  | Conflicts_with { func; a; b } ->
      Fmt.pf ppf "%s conflicts with %s in %s" a b func
  | Consistent_with { func; a; b } ->
      Fmt.pf ppf "%s is consistent with %s in %s" a b func
  | Executes_at_most { func; block; times } ->
      Fmt.pf ppf "%s in %s executes at most %d times" block func times
