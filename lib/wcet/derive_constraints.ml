module L = Tac.Lang
module VD = Tac.Value_domain
module AI = Tac.Absint

type model = {
  dm_name : string;
  dm_func : string;
  dm_program : L.program;
  dm_labels : (string * string) list;
  dm_calls_bound : int;
}

type rule = Exclusive_paths | Equal_guards | Loop_trip_count

type derivation = { dv_model : string; dv_rule : rule; dv_note : string }

type verdict = Proved | Refuted | Unknown

type audit_line = {
  al_constraint : User_constraint.t;
  al_verdict : verdict;
  al_evidence : string;
}

type report = {
  rep_derived : (User_constraint.t * derivation) list;
  rep_audit : audit_line list;
  rep_iterations : int;
  rep_widenings : int;
  rep_narrowings : int;
}

let rule_name = function
  | Exclusive_paths -> "exclusive-paths"
  | Equal_guards -> "equal-guards"
  | Loop_trip_count -> "loop-trip-count"

let verdict_name = function
  | Proved -> "Proved"
  | Refuted -> "Refuted"
  | Unknown -> "Unknown"

let m_derived = Obs.Metrics.counter "constraints.derived"
let m_proved = Obs.Metrics.counter "constraints.proved"
let m_refuted = Obs.Metrics.counter "constraints.refuted"
let m_unknown = Obs.Metrics.counter "constraints.unknown"
let m_iterations = Obs.Metrics.counter "absint.iterations"
let m_widenings = Obs.Metrics.counter "absint.widenings"
let m_narrowings = Obs.Metrics.counter "absint.narrowings"

let negate_cmp = function
  | L.Eq -> L.Ne
  | L.Ne -> L.Eq
  | L.Lt -> L.Ge
  | L.Le -> L.Gt
  | L.Gt -> L.Le
  | L.Ge -> L.Lt

let swap_cmp = function
  | L.Lt -> L.Gt
  | L.Gt -> L.Lt
  | L.Le -> L.Ge
  | L.Ge -> L.Le
  | c -> c

(* Ordered pairs (i < j) of the model's mapped blocks. *)
let mapped_pairs m =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go m.dm_labels

let dedup_regs regs = List.sort_uniq compare regs

(* Exclusive paths: in a loop-free program every SSA register is assigned
   at most once per run, so a register whose abstract values at two
   blocks are disjoint proves the blocks mutually exclusive (and each
   executes at most once), which is exactly the ILP reading of
   Conflicts_with. *)
let derive_conflicts m ai =
  if not (AI.loop_free ai) then []
  else
    List.filter_map
      (fun ((la, ka), (lb, kb)) ->
        if not (AI.reachable ai la && AI.reachable ai lb) then None
        else
          let regs =
            dedup_regs
              (AI.tracked_regs ai ~block:la @ AI.tracked_regs ai ~block:lb)
          in
          List.find_map
            (fun r ->
              let va = AI.reg_value ai ~block:la r
              and vb = AI.reg_value ai ~block:lb r in
              if
                (not (VD.is_bot va))
                && (not (VD.is_bot vb))
                && VD.is_bot (VD.meet va vb)
              then
                Some
                  ( User_constraint.conflicts ~func:m.dm_func ka kb,
                    {
                      dv_model = m.dm_name;
                      dv_rule = Exclusive_paths;
                      dv_note =
                        Fmt.str "%s: %s at %s vs %s at %s are disjoint" r
                          (VD.to_string va) la (VD.to_string vb) lb;
                    } )
              else None)
            regs)
      (mapped_pairs m)

(* The polarity-normalised guard of a block with a unique, exactly-once
   branch predecessor: the condition under which the block executes. *)
let guard_of m ai la =
  match AI.pred_labels ai la with
  | [ p ] when AI.exactly_once ai p -> (
      let b = L.block_exn m.dm_program p in
      match b.term with
      | L.Branch (c, x, y, l1, l2) when l1 <> l2 ->
          if la = l1 then Some (p, c, x, y)
          else if la = l2 then Some (p, negate_cmp c, x, y)
          else None
      | _ -> None)
  | _ -> None

let same_guard (c1, x1, y1) (c2, x2, y2) =
  (c1 = c2 && x1 = x2 && y1 = y2)
  || (c1 = swap_cmp c2 && x1 = y2 && y1 = x2)

(* Equal guards: both blocks are branch arms guarded by the same
   run-constant condition, and both branches execute exactly once per
   invocation, so the blocks' counts are equal (Figure 6). *)
let derive_consistents m ai =
  if not (AI.loop_free ai) then []
  else
    List.filter_map
      (fun ((la, ka), (lb, kb)) ->
        match (guard_of m ai la, guard_of m ai lb) with
        | Some (pa, c1, x1, y1), Some (pb, c2, x2, y2)
          when pa <> pb && same_guard (c1, x1, y1) (c2, x2, y2) ->
            Some
              ( User_constraint.consistent ~func:m.dm_func ka kb,
                {
                  dv_model = m.dm_name;
                  dv_rule = Equal_guards;
                  dv_note =
                    Fmt.str "both guarded by %a %a %a (at %s and %s)"
                      L.pp_operand x1 L.pp_cmp c1 L.pp_operand y1 pa pb;
                } )
        | _ -> None)
      (mapped_pairs m)

(* Loop trip count: a per-run visit bound from the interval analysis,
   scaled by the model's declared invocation bound. *)
let derive_caps m ai =
  List.filter_map
    (fun (la, ka) ->
      if not (AI.in_loop ai la) then None
      else
        match AI.block_visit_bound ai la with
        | Some n ->
            Some
              ( User_constraint.executes_at_most ~func:m.dm_func ka
                  (n * m.dm_calls_bound),
                {
                  dv_model = m.dm_name;
                  dv_rule = Loop_trip_count;
                  dv_note =
                    Fmt.str
                      "<=%d visits per invocation, <=%d invocation%s per \
                       activation"
                      n m.dm_calls_bound
                      (if m.dm_calls_bound = 1 then "" else "s");
                } )
        | None -> None)
    m.dm_labels

let derive_model m =
  let ai = AI.analyse m.dm_program in
  let stats = AI.stats ai in
  (derive_conflicts m ai @ derive_consistents m ai @ derive_caps m ai, stats)

let derive models =
  let derived, iters, wids, narrs =
    List.fold_left
      (fun (acc, i, w, nr) m ->
        let ds, (st : AI.stats) = derive_model m in
        (acc @ ds, i + st.iterations, w + st.widenings, nr + st.narrowings))
      ([], 0, 0, 0) models
  in
  (* Drop structural duplicates derived by several models. *)
  let derived =
    List.fold_left
      (fun acc (c, d) ->
        if List.exists (fun (c', _) -> c' = c) acc then acc
        else acc @ [ (c, d) ])
      [] derived
  in
  Obs.Metrics.incr ~by:(List.length derived) m_derived;
  Obs.Metrics.incr ~by:iters m_iterations;
  Obs.Metrics.incr ~by:wids m_widenings;
  Obs.Metrics.incr ~by:narrs m_narrowings;
  {
    rep_derived = derived;
    rep_audit = [];
    rep_iterations = iters;
    rep_widenings = wids;
    rep_narrowings = narrs;
  }

(* Does a derivation subsume the manual constraint? *)
let subsumes (derived : User_constraint.t) (manual : User_constraint.t) =
  match (derived, manual) with
  | ( User_constraint.Conflicts_with d,
      User_constraint.Conflicts_with k ) ->
      d.func = k.func
      && ((d.a = k.a && d.b = k.b) || (d.a = k.b && d.b = k.a))
  | ( User_constraint.Consistent_with d,
      User_constraint.Consistent_with k ) ->
      d.func = k.func
      && ((d.a = k.a && d.b = k.b) || (d.a = k.b && d.b = k.a))
  | ( User_constraint.Executes_at_most d,
      User_constraint.Executes_at_most k ) ->
      d.func = k.func && d.block = k.block && d.times <= k.times
  | _ -> false

let covers m (c : User_constraint.t) =
  let mapped k = List.exists (fun (_, kl) -> kl = k) m.dm_labels in
  match c with
  | User_constraint.Conflicts_with { func; a; b }
  | User_constraint.Consistent_with { func; a; b } ->
      func = m.dm_func && mapped a && mapped b
  | User_constraint.Executes_at_most { func; block; _ } ->
      func = m.dm_func && mapped block

let model_label m k =
  List.find_map (fun (ml, kl) -> if kl = k then Some ml else None) m.dm_labels

let pp_inputs ppf inputs =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
    inputs

(* Exhaustive concrete search for a violating run of a covering model
   (the same ground truth Kernel_loops uses for loop bounds). *)
let refute_with m (c : User_constraint.t) =
  let witness = ref None in
  let run_counts inputs labels =
    match Tac.Interp.run ~max_steps:1_000_000 m.dm_program ~inputs with
    | _, trace -> Some (List.map (Tac.Interp.visits trace) labels)
    | exception Tac.Interp.Step_limit -> None
  in
  let check inputs =
    match c with
    | User_constraint.Conflicts_with { a; b; _ } -> (
        match (model_label m a, model_label m b) with
        | Some ma, Some mb -> (
            match run_counts inputs [ ma; mb ] with
            | Some [ va; vb ] ->
                if va + vb > 1 then (
                  witness :=
                    Some
                      (Fmt.str "%a: %s ran %d times, %s %d times" pp_inputs
                         inputs a va b vb);
                  false)
                else true
            | _ -> true)
        | _ -> true)
    | User_constraint.Consistent_with { a; b; _ } -> (
        match (model_label m a, model_label m b) with
        | Some ma, Some mb -> (
            match run_counts inputs [ ma; mb ] with
            | Some [ va; vb ] ->
                if va <> vb then (
                  witness :=
                    Some
                      (Fmt.str "%a: %s ran %d times but %s %d times" pp_inputs
                         inputs a va b vb);
                  false)
                else true
            | _ -> true)
        | _ -> true)
    | User_constraint.Executes_at_most { block; times; _ } -> (
        match model_label m block with
        | Some mb -> (
            match run_counts inputs [ mb ] with
            | Some [ v ] ->
                if v > times then (
                  witness :=
                    Some
                      (Fmt.str "%a: %s ran %d times (cap %d)" pp_inputs inputs
                         block v times);
                  false)
                else true
            | _ -> true)
        | None -> true)
  in
  if Tac.Interp.for_all_inputs m.dm_program check then None
  else
    Option.map (fun w -> Fmt.str "model %s, inputs %s" m.dm_name w) !witness

let audit ~models ~manual =
  let base = derive models in
  let audit_line c =
    match
      List.find_opt (fun (d, _) -> subsumes d c) base.rep_derived
    with
    | Some (_, dv) ->
        {
          al_constraint = c;
          al_verdict = Proved;
          al_evidence =
            Fmt.str "%s via %s: %s" dv.dv_model (rule_name dv.dv_rule)
              dv.dv_note;
        }
    | None -> (
        let covering = List.filter (fun m -> covers m c) models in
        match List.find_map (fun m -> refute_with m c) covering with
        | Some ev -> { al_constraint = c; al_verdict = Refuted; al_evidence = ev }
        | None ->
            {
              al_constraint = c;
              al_verdict = Unknown;
              al_evidence =
                (if covering = [] then "no decision model covers this constraint"
                 else "analysis could not decide");
            })
  in
  let audit = List.map audit_line manual in
  let count v =
    List.length (List.filter (fun l -> l.al_verdict = v) audit)
  in
  Obs.Metrics.incr ~by:(count Proved) m_proved;
  Obs.Metrics.incr ~by:(count Refuted) m_refuted;
  Obs.Metrics.incr ~by:(count Unknown) m_unknown;
  { base with rep_audit = audit }

let pp_rule ppf r = Fmt.string ppf (rule_name r)
let pp_verdict ppf v = Fmt.string ppf (verdict_name v)

let pp_derived ppf (c, d) =
  Fmt.pf ppf "%a  [%s/%a: %s]" User_constraint.pp c d.dv_model pp_rule
    d.dv_rule d.dv_note

let pp_audit_line ppf l =
  Fmt.pf ppf "%-8s %a  (%s)" (verdict_name l.al_verdict) User_constraint.pp
    l.al_constraint l.al_evidence

let pp_report ppf r =
  Fmt.pf ppf "@[<v>derived (%d):@," (List.length r.rep_derived);
  List.iter (fun d -> Fmt.pf ppf "  %a@," pp_derived d) r.rep_derived;
  Fmt.pf ppf "manual audit (%d):@," (List.length r.rep_audit);
  List.iter (fun l -> Fmt.pf ppf "  %a@," pp_audit_line l) r.rep_audit;
  Fmt.pf ppf "absint: %d iterations, %d widenings, %d narrowings@]"
    r.rep_iterations r.rep_widenings r.rep_narrowings
