(* Monotonic wall-clock time for the analysis engine.

   [Sys.time] reports *CPU* time summed over every running thread, which
   both stalls (while blocked) and over-counts (once analyses fan out
   across OCaml 5 domains).  Elapsed-time reporting must use a monotonic
   wall clock instead; the C stub below (shipped with bechamel, already a
   bench dependency) wraps clock_gettime(CLOCK_MONOTONIC). *)

let now_ns () = Monotonic_clock.now ()

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let elapsed_s ~since = now_s () -. since
