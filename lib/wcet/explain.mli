(** Bound decomposition: reconstruct the analytic worst-case path of a
    solved IPET instance as an {!Obs.Bound_profile}.

    The ILP objective is [sum_b cycles_b * x_b], so the per-block rows of
    the profile sum exactly to [result.wcet]; each row's per-visit cycles
    are split into instruction execution, memory (cache) stall and
    pipeline (branch) components using the same cost model the cache
    analysis charged. *)

val profile : config:Hw.Config.t -> entry:string -> Ipet.result -> Obs.Bound_profile.t
(** [entry] names the analysed entry point in the profile (e.g.
    ["syscall"]).  The profile carries the positive-flow edges and the
    binding constraint rows (with provenance labels) of the optimal
    basis. *)
