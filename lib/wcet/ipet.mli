(** Implicit Path Enumeration Technique: virtual inlining, cache analysis,
    ILP generation and solving, as in Section 5.2 of the paper.

    The pipeline is split so the expensive analysis prefix (inlining, loop
    detection, cache fixpoint) can be {!prepare}d once per (program,
    hardware configuration, pinned lines) and shared by every ILP variant
    solved over it via {!analyse_prepared}. *)

type loop_bound = { func : string; header : string; bound : int }
(** Maximum executions of the header block per entry into the loop. *)

type spec = {
  program : Timing.t Cfg.Flowgraph.program;
  bounds : loop_bound list;
  constraints : User_constraint.t list;  (** manual, Section 5.2 *)
  derived : (User_constraint.t * Derive_constraints.derivation) list;
      (** mechanically derived by {!Derive_constraints}, with
          provenance; see the [sources] selector *)
}

type sources = [ `All | `Manual | `Derived ]
(** Which constraint sources an ILP variant uses.  [`All] is the
    default: the manual set plus every derived constraint that does not
    structurally duplicate a manual one. *)

type result = {
  wcet : int;  (** sound upper bound, in cycles *)
  block_counts : int array;  (** worst-case execution count per inlined block *)
  inlined : Timing.t Cfg.Inline.t;
  costs : Cache_analysis.t;
  ilp_vars : int;
  ilp_constraints : int;
  bb_nodes : int;
  lp_solves : int;
  elapsed_s : float;
      (** monotonic wall time of this analysis (prefix + ILP), as if run
          fresh; prefix time is included even when the prefix was shared *)
  ilp_solution : int array;
      (** the full optimal assignment over every ILP variable (blocks and
          edges, in creation order) — a valid warm start for any *less*
          constrained variant of the same problem *)
  edge_counts : ((int * int) * int) list;
      (** traversal counts of CFG edges (inlined block ids) at the optimum,
          restricted to edges with positive flow, sorted *)
  binding_constraints : (string * int) list;
      (** labelled inequality rows that are tight at the optimum — the loop
          bounds and provenance-labelled user constraints of the optimal
          basis that actually limit the bound — with the row's left-hand
          side value; flow-conservation equalities are omitted *)
}

exception Unbounded_loop of string
(** A loop header without an iteration bound; the analysis requires all
    loops bounded (Section 5.3). *)

exception No_solution of string

type prepared
(** The analysis prefix: inlined CFG, cache-analysis costs, loops,
    predecessors and the per-function context table.  Immutable once
    built; safe to share across domains. *)

val prepare :
  config:Hw.Config.t ->
  ?pinned_code:int list ->
  ?pinned_data:int list ->
  spec ->
  prepared

val analyse_prepared :
  ?use_constraints:bool ->
  ?sources:sources ->
  ?forced:(string * string * int) list ->
  ?warm_start:int array ->
  prepared ->
  result
(** Build and solve one ILP over a shared prefix.  [use_constraints:false]
    drops every user constraint, manual and derived (the Section 6.3
    unconstrained baseline); [sources] selects between them when
    constraints are on.  Constraint rows carry their provenance in the
    ILP row label.  [forced] pins total execution counts of
    (function, block label) pairs, which is how Section 6.2 computes the
    predicted time of a specific realisable path.  [warm_start] seeds
    branch-and-bound with a candidate solution (see
    {!Ilp.Branch_bound.solve}); the [ilp_solution] of a more constrained
    variant of the same prepared problem is always safe. *)

val analyse :
  config:Hw.Config.t ->
  ?pinned_code:int list ->
  ?pinned_data:int list ->
  ?forced:(string * string * int) list ->
  spec ->
  result
(** [prepare] + [analyse_prepared] in one step. *)

type persisted = {
  ps_wcet : int;
  ps_block_counts : int array;
  ps_ilp_vars : int;
  ps_ilp_constraints : int;
  ps_bb_nodes : int;
  ps_lp_solves : int;
  ps_elapsed_s : float;
  ps_ilp_solution : int array;
  ps_edge_counts : ((int * int) * int) list;
  ps_binding_constraints : (string * int) list;
}
(** The marshal-safe subset of a {!result}: everything except the
    in-process [inlined] CFG and [costs] tables, which are pure functions
    of the analysis inputs and are rebuilt by {!prepare} on rehydration.
    Contains only ints, floats, strings, arrays and lists — safe for
    [Marshal] across process boundaries of the same binary. *)

val to_persisted : result -> persisted

val rehydrate : prepared -> persisted -> result
(** Reconstitute a full {!result} from a persisted record and the prepared
    prefix it was computed over, without building or solving any ILP.
    Sound only when the prefix was prepared from the *same* content key
    (spec, config, pins) the persisted record was stored under; the
    on-disk cache guarantees this by content addressing.  The block-count
    array length is checked against the prefix as a cheap corruption
    guard.
    @raise Invalid_argument on a shape mismatch. *)

val worst_path : result -> (string * int * int) list
(** Blocks on the worst-case path: (inlined label, count, cycles/visit). *)
