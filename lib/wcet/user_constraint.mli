(** The three manual constraint forms of Section 5.2, used to exclude
    infeasible paths from the ILP:

    - "a conflicts with b in f": mutually exclusive within one invocation;
    - "a is consistent with b in f": equal execution counts per invocation
      (the Figure 6 duplicated-switch pattern);
    - "a executes at most n times": a global cap across all contexts.

    Blocks are named by label within their source function; virtual
    inlining multiplies each constraint across calling contexts. *)

type t =
  | Conflicts_with of { func : string; a : string; b : string }
  | Consistent_with of { func : string; a : string; b : string }
  | Executes_at_most of { func : string; block : string; times : int }

val conflicts : func:string -> string -> string -> t
val consistent : func:string -> string -> string -> t
val executes_at_most : func:string -> string -> int -> t
(** @raise Invalid_argument on a negative count (an assert would vanish
    under the release profile). *)


val pp : t Fmt.t
