(* Bound decomposition: the per-block cycle split mirrors the cost model
   of Cache_analysis.transfer —

     cycles = instrs + miss penalties + data-hit cycles + branch cost

   so execution = instrs, pipeline = the static branch cost when the
   block ends in a conditional, and stall = everything the memory
   hierarchy charged (fetch/data miss penalties plus L1 data-hit
   cycles).  The three parts partition [cycles] exactly, which is what
   makes the profile sum to the bound to the cycle. *)

(* Source block label of an inlined block: its inlined label is
   [context ^ "/" ^ source label]. *)
let source_label ~context label =
  let prefix = String.length context + 1 in
  if String.length label > prefix && String.sub label 0 (prefix - 1) = context
  then String.sub label prefix (String.length label - prefix)
  else label

let profile ~config ~entry (r : Ipet.result) =
  let fn = r.inlined.Cfg.Inline.fn in
  let block_label id = (Cfg.Flowgraph.block fn id).Cfg.Flowgraph.label in
  let rows =
    Array.to_list fn.Cfg.Flowgraph.blocks
    |> List.filter_map (fun (b : Timing.t Cfg.Flowgraph.block) ->
           let id = b.Cfg.Flowgraph.id in
           let count = r.block_counts.(id) in
           if count = 0 then None
           else
             let origin = Cfg.Inline.origin r.inlined id in
             let cost = Cache_analysis.cost r.costs id in
             let payload = b.Cfg.Flowgraph.payload in
             let exec = payload.Timing.instrs in
             let pipeline =
               if
                 Timing.ends_in_branch payload
                   ~num_succs:(List.length b.Cfg.Flowgraph.succs)
               then config.Hw.Config.branch_cost_static
               else 0
             in
             Some
               {
                 Obs.Bound_profile.r_func = origin.Cfg.Inline.func;
                 r_context = origin.Cfg.Inline.context;
                 r_label =
                   source_label ~context:origin.Cfg.Inline.context
                     b.Cfg.Flowgraph.label;
                 r_count = count;
                 r_cycles = cost.Cache_analysis.cycles;
                 r_exec = exec;
                 r_stall = cost.Cache_analysis.cycles - exec - pipeline;
                 r_pipeline = pipeline;
                 r_fetch_misses = cost.Cache_analysis.fetch_misses;
                 r_data_misses = cost.Cache_analysis.data_misses;
               })
  in
  {
    Obs.Bound_profile.p_entry = entry;
    p_wcet = r.wcet;
    p_rows = rows;
    p_edges =
      List.map
        (fun ((a, b), c) -> ((block_label a, block_label b), c))
        r.edge_counts;
    p_binding = r.binding_constraints;
  }
