(** Monotonic wall clock (nanosecond C stub), for timing analyses that may
    run concurrently on several domains — [Sys.time] is CPU time and would
    over-count there. *)

val now_ns : unit -> int64
val now_s : unit -> float
val elapsed_s : since:float -> float
