type policy = Spread | Shielded

type t = { cores : int; policy : policy }

let make ~cores ~policy =
  if cores < 1 then invalid_arg "Smp.Topology.make: cores must be >= 1";
  { cores; policy }

let policy_name = function Spread -> "spread" | Shielded -> "shielded"

let policy_of_string = function
  | "spread" -> Ok Spread
  | "shielded" -> Ok Shielded
  | s -> Error (Fmt.str "unknown affinity policy %S (spread|shielded)" s)

let tenant_cores t =
  match t.policy with
  | Spread -> List.init t.cores Fun.id
  | Shielded ->
      if t.cores = 1 then [ 0 ] else List.init (t.cores - 1) (fun c -> c + 1)

let route_line t ~line =
  match t.policy with Shielded -> 0 | Spread -> line mod t.cores

let place_tenants t ~total =
  let counts = Array.make t.cores 0 in
  let homes = Array.of_list (tenant_cores t) in
  for i = 0 to total - 1 do
    let c = homes.(i mod Array.length homes) in
    counts.(c) <- counts.(c) + 1
  done;
  counts

let receives_ipis t ~core =
  t.cores > 1 && List.mem core (tenant_cores t)

let sends_shootdowns t ~core =
  t.cores > 1
  && List.mem core (tenant_cores t)
  (* a broadcast needs at least one *other* tenant core to hit; under
     Shielded the shielded core must never be a target, so with two cores
     the single tenant core has nobody to shoot down *)
  && List.length (tenant_cores t) > 1
