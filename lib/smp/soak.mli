(** The multicore soak: N per-core worlds interleaved in global cycle
    order, coupled through the IPI fabric.

    Each core is one {!Sim.make_world} instance — its own booted kernel
    (tagged with the core id, so the affinity invariant bites), its own
    per-CPU timer and run queues, the scenario's tenant threads and
    device lines that the {!Topology} routes to it.  The driver always
    steps the unfinished world with the lowest cycle count (ties to the
    lowest core id), so the interleaving is a pure function of the seed.

    Cross-core traffic, all deterministic:
    - every device delivery on a core sends one [Resched] IPI to the next
      tenant core round-robin — the "my handler woke a worker pinned
      elsewhere" pattern; under the shielded policy core 0 is therefore a
      pure IPI {e sender}, never a receiver;
    - cores running address-space-mutating workloads broadcast a
      [Tlb_shootdown] to the other tenant cores at a fixed cycle period
      (longer than the response bound, so at most one broadcast lands in
      any response window).

    IPI costs are charged outside kernel entries — send cycles on the
    source, receive (and shootdown-handler) cycles on the destination —
    and every delivery on every core is checked against that core's
    {!Bound.per_core} total, under the same queued-delivery window rule
    as the single-core campaign. *)

type core_run = {
  cr_core : int;
  cr_parked : bool;
      (** no tenants and no routed lines: the core idles and is excluded
          from IPI targeting *)
  cr_tenants : int;
  cr_lines : int list;  (** device lines routed to this core *)
  cr_bound : Bound.t;
  cr_entries : int;
  cr_deliveries : int;  (** all interrupt deliveries, device and IPI *)
  cr_queued : int;
  cr_ipi_delivered : int;
  cr_latency : Sim.latency_stats;
      (** single-outstanding deliveries, checked against [cr_bound] *)
  cr_hist : (int * int) list;
      (** the exact (latency, count) histogram behind [cr_latency] —
          what {!run_compare} pools across cores and scenarios *)
  cr_violations : Sim.violation list;
  cr_inv : string list;
}

type scenario_run = {
  sr_scenario : string;
  sr_cores : core_run array;
  sr_ipi_sent : int;
  sr_ipi_coalesced : int;
  sr_ipi_delivered : int;
  sr_ipi_cancelled : int;
  sr_fabric_error : string option;
      (** a failed {!Fabric.check}: some IPI neither delivered nor
          cancelled, or the accounting broke *)
}

type report = {
  rp_seed : int;
  rp_cores : int;
  rp_policy : Topology.policy;
  rp_entries_per_core : int;
  rp_base_bound : int;  (** the single-core bound the per-core totals extend *)
  rp_irq_wcet : int;
  rp_scenarios : scenario_run list;
  rp_deliveries : int;
  rp_ipi_sent : int;
  rp_ipi_delivered : int;
  rp_ipi_cancelled : int;
  rp_ipi_coalesced : int;
  rp_violations : int;
  rp_invariant_failures : int;
  rp_ok : bool;
}

val run :
  ?seed:int ->
  ?entries:int ->
  ?smoke:bool ->
  ?inv_every:int ->
  ?only:string list ->
  cores:int ->
  policy:Topology.policy ->
  unit ->
  report
(** Run the five-scenario mix on [cores] cores.  [entries] is per core
    (default 1_500 under [smoke], 12_000 otherwise); [inv_every] samples
    the invariant catalogue — including the SMP membership and affinity
    checks — every that many entries per core (default 256 under smoke,
    512 otherwise; 0 disables).  Serial and deterministic: the report is
    a pure function of the arguments.  Registry metrics ([smp.ipi.*],
    [smp.core<i>.deliveries], ...) are bumped as a side effect. *)

(** Shielded-vs-spread tail comparison at identical seed, cores and
    entry budget: the shielded interrupt core's observed delivery tail
    against the aggregate over every spread core that takes device
    interrupts. *)
type comparison = {
  cmp_cores : int;
  cmp_shielded : Sim.latency_stats;  (** shielded core 0, all scenarios *)
  cmp_spread : Sim.latency_stats;
      (** spread cores with routed device lines, all scenarios *)
  cmp_tail_lower : bool;
      (** strict: shielded p99.9 {e and} max below the spread ones *)
}

val run_compare :
  ?seed:int ->
  ?entries:int ->
  ?smoke:bool ->
  cores:int ->
  unit ->
  report * report * comparison
(** [(shielded, spread, comparison)]. *)

val report_json : report -> string
val comparison_json : comparison -> string
val pp_report : report Fmt.t
val pp_comparison : comparison Fmt.t
