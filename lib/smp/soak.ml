module K = Sel4.Kernel
module Costs = Sel4.Costs
module Prng = Sel4_rt.Prng
module Analysis_ctx = Sel4_rt.Analysis_ctx
module Response_time = Sel4_rt.Response_time
module Kernel_model = Sel4_rt.Kernel_model

type core_run = {
  cr_core : int;
  cr_parked : bool;
  cr_tenants : int;
  cr_lines : int list;
  cr_bound : Bound.t;
  cr_entries : int;
  cr_deliveries : int;
  cr_queued : int;
  cr_ipi_delivered : int;
  cr_latency : Sim.latency_stats;
  cr_hist : (int * int) list;
  cr_violations : Sim.violation list;
  cr_inv : string list;
}

type scenario_run = {
  sr_scenario : string;
  sr_cores : core_run array;
  sr_ipi_sent : int;
  sr_ipi_coalesced : int;
  sr_ipi_delivered : int;
  sr_ipi_cancelled : int;
  sr_fabric_error : string option;
}

type report = {
  rp_seed : int;
  rp_cores : int;
  rp_policy : Topology.policy;
  rp_entries_per_core : int;
  rp_base_bound : int;
  rp_irq_wcet : int;
  rp_scenarios : scenario_run list;
  rp_deliveries : int;
  rp_ipi_sent : int;
  rp_ipi_delivered : int;
  rp_ipi_cancelled : int;
  rp_ipi_coalesced : int;
  rp_violations : int;
  rp_invariant_failures : int;
  rp_ok : bool;
}

let stats_of_pairs pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (v, c) ->
      Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    pairs;
  Sim.stats_of_hist tbl

(* One scenario on one topology: build the per-core worlds, interleave
   them in cycle order, couple them through the fabric. *)
let run_scenario ~(topo : Topology.t) ~entries ~inv_every ~base_bound ~irq_wcet
    ~(rng : Prng.t) (sc : Sim.scenario) =
  let cores = topo.Topology.cores in
  let fabric = Fabric.create ~cores in
  let counts = Topology.place_tenants topo ~total:sc.Sim.sc_tenants in
  let bounds = Array.init cores (fun c -> Bound.per_core topo ~base:base_bound ~core:c) in
  let lines_of c =
    List.filter_map
      (fun (d : Sim.device) ->
        if Topology.route_line topo ~line:d.Sim.dev_line = c then
          Some d.Sim.dev_line
        else None)
      sc.Sim.sc_devices
  in
  (* Per-step observation buffers: only one world steps at a time, so a
     single shared pair suffices.  [recv_buf] holds IPI kinds the stepped
     core just took; [nudge_count] counts its device deliveries (each one
     sends a Resched nudge to the next tenant core). *)
  let recv_buf = ref [] in
  let nudge_count = ref 0 in
  let ipi_delivered = Array.make cores 0 in
  let parked = Array.make cores false in
  let worlds = Array.make cores None in
  Array.iteri
    (fun c _ ->
      let tenants = counts.(c) in
      let devices =
        List.filter
          (fun (d : Sim.device) ->
            Topology.route_line topo ~line:d.Sim.dev_line = c)
          sc.Sim.sc_devices
      in
      if tenants = 0 && devices = [] then parked.(c) <- true
      else begin
        let workload =
          if tenants = 0 then Sim.Notification_storm else sc.Sim.sc_workload
        in
        let core_sc =
          {
            Sim.sc_name = Fmt.str "%s@core%d" sc.Sim.sc_name c;
            sc_workload = workload;
            sc_tenants = tenants;
            sc_devices = devices;
          }
        in
        let on_delivery ~line ~latency:_ ~cycle:_ =
          match Fabric.kind_of_line line with
          | Some k ->
              recv_buf := k :: !recv_buf;
              ipi_delivered.(c) <- ipi_delivered.(c) + 1
          | None -> incr nudge_count
        in
        worlds.(c) <-
          Some
            (Sim.make_world ~cpu_id:c ~on_delivery ~build:Sel4.Build.improved
               ~config:Hw.Config.default ~selection:None ~scenario:core_sc
               ~entries ~bound:bounds.(c).Bound.b_total ~irq_wcet ~inv_every
               ~rng:(Prng.split_at rng (1000 + c)) ())
      end)
    worlds;
  let live c = match worlds.(c) with Some _ -> true | None -> false in
  let world c =
    match worlds.(c) with Some w -> w | None -> assert false
  in
  let finished = Array.make cores false in
  Array.iteri (fun c p -> if p then finished.(c) <- true) parked;
  (* IPI targeting: live tenant cores other than the source.  The
     shielded core is never a tenant core, so it is never a target. *)
  let targets =
    Array.init cores (fun src ->
        Array.of_list
          (List.filter (fun c -> c <> src && live c) (Topology.tenant_cores topo)))
  in
  let rr = Array.make cores 0 in
  (* TLB-shootdown broadcasts: only from live cores running an
     address-space-mutating workload, at a fixed period per source that
     comfortably exceeds any per-core bound — so at most one broadcast
     can land inside a response window. *)
  let max_bound =
    Array.fold_left (fun a b -> max a b.Bound.b_total) 0 bounds
  in
  let shoot_period = max 500_000 (8 * max_bound) in
  let shoots = Array.make cores false in
  Array.iteri
    (fun c _ ->
      shoots.(c) <-
        live c && counts.(c) > 0
        && Topology.sends_shootdowns topo ~core:c
        && Array.length targets.(c) > 0
        && (match sc.Sim.sc_workload with
           | Sim.Vspace_churn | Sim.Untyped_churn -> true
           | _ -> false))
    shoots;
  let next_shoot = Array.make cores max_int in
  Array.iteri
    (fun c on ->
      if on then next_shoot.(c) <- Sim.world_cycles (world c) + shoot_period)
    shoots;
  let outs = Array.make cores None in
  let n_live = ref 0 in
  Array.iteri (fun c _ -> if live c then incr n_live) worlds;
  let n_done = ref 0 in
  (* Deliver an accepted IPI: assert the kind's line on the destination
     kernel so it lands [ipi_wire_cycles] after the send on the global
     timeline (at least one destination cycle out).  A destination that
     already finished its run leaves the IPI outstanding; the final sweep
     cancels it — the fabric invariant accounts for both fates. *)
  let put_on_wire ~src ~dst kind =
    if not finished.(dst) then begin
      let now_src = Sim.world_cycles (world src) in
      let now_dst = Sim.world_cycles (world dst) in
      let delay = max 1 (now_src + Costs.ipi_wire_cycles - now_dst) in
      K.schedule_irq (Sim.world_kernel (world dst)) (Fabric.line_of kind) ~delay
    end
  in
  while !n_done < !n_live do
    (* lowest cycle count among unfinished worlds, ties to lowest id *)
    let best = ref (-1) in
    for c = cores - 1 downto 0 do
      if not finished.(c) then
        if
          !best < 0
          || Sim.world_cycles (world c) <= Sim.world_cycles (world !best)
        then best := c
    done;
    let c = !best in
    let w = world c in
    recv_buf := [];
    nudge_count := 0;
    Sim.world_step w;
    let cpu = Sim.world_cpu w in
    (* Inbound IPIs this step: consume them in the fabric and charge the
       receive vector (plus the shootdown handler body) on this core. *)
    List.iter
      (fun kind ->
        Fabric.note_delivered fabric ~dst:c kind;
        let cost =
          Costs.ipi_receive_instrs
          + match kind with
            | Fabric.Tlb_shootdown -> Costs.tlb_shootdown_instrs
            | Fabric.Resched -> 0
        in
        Hw.Cpu.tick cpu cost)
      (List.rev !recv_buf);
    (* Periodic shootdown broadcast from address-space-churning cores. *)
    if shoots.(c) then
      while Sim.world_cycles w >= next_shoot.(c) do
        Array.iter
          (fun dst ->
            Hw.Cpu.tick cpu Costs.ipi_send_instrs;
            if Fabric.send fabric ~src:c ~dst Fabric.Tlb_shootdown then
              put_on_wire ~src:c ~dst Fabric.Tlb_shootdown)
          targets.(c);
        next_shoot.(c) <- next_shoot.(c) + shoot_period
      done;
    (* One Resched nudge per device delivery, round-robin over the other
       tenant cores (the woken worker lives elsewhere). *)
    if Array.length targets.(c) > 0 then
      for _ = 1 to !nudge_count do
        let cand = targets.(c) in
        let dst = cand.(rr.(c) mod Array.length cand) in
        rr.(c) <- rr.(c) + 1;
        Hw.Cpu.tick cpu Costs.ipi_send_instrs;
        if Fabric.send fabric ~src:c ~dst Fabric.Resched then
          put_on_wire ~src:c ~dst Fabric.Resched
      done;
    if Sim.world_done w then begin
      finished.(c) <- true;
      outs.(c) <- Some (Sim.world_finish w);
      incr n_done
    end
  done;
  (* Final sweep: anything still outstanding was sent toward a core whose
     run ended first — cancel it so the delivery invariant closes. *)
  for dst = 0 to cores - 1 do
    ignore (Fabric.cancel_outstanding fabric ~dst)
  done;
  let fabric_error =
    match Fabric.check ~final:true fabric with
    | Ok () -> None
    | Error m -> Some m
  in
  let core_runs =
    Array.init cores (fun c ->
        let out = outs.(c) in
        let so_or d f = match out with Some o -> f o | None -> d in
        {
          cr_core = c;
          cr_parked = parked.(c);
          cr_tenants = counts.(c);
          cr_lines = lines_of c;
          cr_bound = bounds.(c);
          cr_entries = so_or 0 (fun o -> o.Sim.so_entries);
          cr_deliveries = so_or 0 (fun o -> o.Sim.so_deliveries);
          cr_queued = so_or 0 (fun o -> o.Sim.so_queued);
          cr_ipi_delivered = ipi_delivered.(c);
          cr_latency = stats_of_pairs (so_or [] (fun o -> o.Sim.so_hist));
          cr_hist = so_or [] (fun o -> o.Sim.so_hist);
          cr_violations = so_or [] (fun o -> o.Sim.so_violations);
          cr_inv = so_or [] (fun o -> o.Sim.so_inv);
        })
  in
  {
    sr_scenario = sc.Sim.sc_name;
    sr_cores = core_runs;
    sr_ipi_sent = Fabric.sent fabric;
    sr_ipi_coalesced = Fabric.coalesced fabric;
    sr_ipi_delivered = Fabric.delivered fabric;
    sr_ipi_cancelled = Fabric.cancelled fabric;
    sr_fabric_error = fabric_error;
  }

let run ?(seed = 42) ?entries ?(smoke = false) ?inv_every ?only ~cores ~policy
    () =
  let entries =
    match entries with Some n -> n | None -> if smoke then 1_500 else 12_000
  in
  let inv_every =
    match inv_every with
    | Some n -> max 0 n
    | None -> if smoke then 256 else 512
  in
  let topo = Topology.make ~cores ~policy in
  let chosen =
    match only with
    | None -> Sim.scenarios
    | Some names ->
        List.filter (fun s -> List.mem s.Sim.sc_name names) Sim.scenarios
  in
  (* Same analysis inputs as the single-core campaign's benno_bitmap
     variant: the per-core bounds extend this base. *)
  let actx =
    Analysis_ctx.make ~config:Hw.Config.default ~pins:Analysis_ctx.no_pins
      ~build:Sel4.Build.improved ()
  in
  let base_bound = Response_time.interrupt_response_bound actx in
  let irq_wcet = Response_time.computed_cycles actx Kernel_model.Interrupt in
  let root = Prng.create seed in
  let scen_runs =
    List.mapi
      (fun i sc ->
        run_scenario ~topo ~entries ~inv_every ~base_bound ~irq_wcet
          ~rng:(Prng.split_at root i) sc)
      chosen
  in
  let sum f = List.fold_left (fun a sr -> a + f sr) 0 scen_runs in
  let sum_cores f =
    sum (fun sr -> Array.fold_left (fun a cr -> a + f cr) 0 sr.sr_cores)
  in
  let deliveries = sum_cores (fun cr -> cr.cr_deliveries) in
  let violations = sum_cores (fun cr -> List.length cr.cr_violations) in
  let inv_failures = sum_cores (fun cr -> List.length cr.cr_inv) in
  let fabric_ok = List.for_all (fun sr -> sr.sr_fabric_error = None) scen_runs in
  let report =
    {
      rp_seed = seed;
      rp_cores = cores;
      rp_policy = policy;
      rp_entries_per_core = entries;
      rp_base_bound = base_bound;
      rp_irq_wcet = irq_wcet;
      rp_scenarios = scen_runs;
      rp_deliveries = deliveries;
      rp_ipi_sent = sum (fun sr -> sr.sr_ipi_sent);
      rp_ipi_delivered = sum (fun sr -> sr.sr_ipi_delivered);
      rp_ipi_cancelled = sum (fun sr -> sr.sr_ipi_cancelled);
      rp_ipi_coalesced = sum (fun sr -> sr.sr_ipi_coalesced);
      rp_violations = violations;
      rp_invariant_failures = inv_failures;
      rp_ok = violations = 0 && inv_failures = 0 && fabric_ok;
    }
  in
  let c name = Obs.Metrics.counter name in
  Obs.Metrics.incr ~by:report.rp_ipi_sent (c "smp.ipi.sent");
  Obs.Metrics.incr ~by:report.rp_ipi_delivered (c "smp.ipi.delivered");
  Obs.Metrics.incr ~by:report.rp_ipi_cancelled (c "smp.ipi.cancelled");
  Obs.Metrics.incr ~by:report.rp_ipi_coalesced (c "smp.ipi.coalesced");
  Obs.Metrics.incr ~by:report.rp_deliveries (c "smp.deliveries");
  Obs.Metrics.incr ~by:report.rp_violations (c "smp.violations");
  List.iter
    (fun sr ->
      Array.iter
        (fun cr ->
          Obs.Metrics.incr ~by:cr.cr_deliveries
            (c (Fmt.str "smp.core%d.deliveries" cr.cr_core));
          Obs.Metrics.incr ~by:cr.cr_ipi_delivered
            (c (Fmt.str "smp.core%d.ipi_delivered" cr.cr_core)))
        sr.sr_cores)
    scen_runs;
  report

type comparison = {
  cmp_cores : int;
  cmp_shielded : Sim.latency_stats;
  cmp_spread : Sim.latency_stats;
  cmp_tail_lower : bool;
}

let run_compare ?(seed = 42) ?entries ?(smoke = false) ~cores () =
  let shielded = run ~seed ?entries ~smoke ~cores ~policy:Topology.Shielded () in
  let spread = run ~seed ?entries ~smoke ~cores ~policy:Topology.Spread () in
  (* Exact merged tails: the per-core exact histograms, pooled. *)
  let merge report ~keep =
    stats_of_pairs
      (List.concat_map
         (fun sr ->
           Array.to_list sr.sr_cores
           |> List.concat_map (fun cr -> if keep cr then cr.cr_hist else []))
         report.rp_scenarios)
  in
  let sh = merge shielded ~keep:(fun cr -> cr.cr_core = 0) in
  let sp = merge spread ~keep:(fun cr -> cr.cr_lines <> []) in
  let cmp =
    {
      cmp_cores = cores;
      cmp_shielded = sh;
      cmp_spread = sp;
      cmp_tail_lower =
        sh.Sim.ls_count > 0 && sp.Sim.ls_count > 0
        && sh.Sim.ls_p999 < sp.Sim.ls_p999
        && sh.Sim.ls_max < sp.Sim.ls_max;
    }
  in
  (shielded, spread, cmp)

(* ---- rendering ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let stats_json buf (s : Sim.latency_stats) =
  Buffer.add_string buf
    (Fmt.str
       "{\"count\": %d, \"min\": %d, \"p50\": %d, \"p90\": %d, \"p99\": %d, \
        \"p999\": %d, \"max\": %d}"
       s.Sim.ls_count s.Sim.ls_min s.Sim.ls_p50 s.Sim.ls_p90 s.Sim.ls_p99
       s.Sim.ls_p999 s.Sim.ls_max)

let report_json r =
  let buf = Buffer.create 4096 in
  let addf fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  addf
    "{\"engine\": \"smp_soak\", \"seed\": %d, \"cores\": %d, \"policy\": \
     \"%s\", \"entries_per_core\": %d, \"base_bound\": %d, \"irq_wcet\": %d,\n"
    r.rp_seed r.rp_cores
    (Topology.policy_name r.rp_policy)
    r.rp_entries_per_core r.rp_base_bound r.rp_irq_wcet;
  addf
    " \"ipi\": {\"sent\": %d, \"coalesced\": %d, \"delivered\": %d, \
     \"cancelled\": %d},\n"
    r.rp_ipi_sent r.rp_ipi_coalesced r.rp_ipi_delivered r.rp_ipi_cancelled;
  addf " \"deliveries\": %d, \"violations\": %d, \"invariant_failures\": %d,\n"
    r.rp_deliveries r.rp_violations r.rp_invariant_failures;
  addf " \"scenarios\": [\n";
  List.iteri
    (fun i sr ->
      if i > 0 then addf ",\n";
      addf "  {\"scenario\": \"%s\", \"ipi\": {\"sent\": %d, \"coalesced\": \
            %d, \"delivered\": %d, \"cancelled\": %d}, \"fabric_error\": %s,\n"
        (json_escape sr.sr_scenario) sr.sr_ipi_sent sr.sr_ipi_coalesced
        sr.sr_ipi_delivered sr.sr_ipi_cancelled
        (match sr.sr_fabric_error with
        | None -> "null"
        | Some m -> Fmt.str "\"%s\"" (json_escape m));
      addf "   \"cores\": [\n";
      Array.iteri
        (fun j cr ->
          if j > 0 then addf ",\n";
          addf
            "    {\"core\": %d, \"parked\": %b, \"tenants\": %d, \"lines\": \
             [%s], \"bound\": "
            cr.cr_core cr.cr_parked cr.cr_tenants
            (String.concat ", " (List.map string_of_int cr.cr_lines));
          Bound.to_json buf cr.cr_bound;
          addf
            ", \"entries\": %d, \"deliveries\": %d, \"queued\": %d, \
             \"ipi_delivered\": %d, \"violations\": %d, \
             \"invariant_failures\": %d, \"latency\": "
            cr.cr_entries cr.cr_deliveries cr.cr_queued cr.cr_ipi_delivered
            (List.length cr.cr_violations)
            (List.length cr.cr_inv);
          stats_json buf cr.cr_latency;
          addf "}")
        sr.sr_cores;
      addf "\n   ]}")
    r.rp_scenarios;
  addf "\n ],\n \"ok\": %b}\n" r.rp_ok;
  Buffer.contents buf

let comparison_json cmp =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "{\"cores\": %d, \"shielded\": " cmp.cmp_cores);
  stats_json buf cmp.cmp_shielded;
  Buffer.add_string buf ", \"spread\": ";
  stats_json buf cmp.cmp_spread;
  Buffer.add_string buf
    (Fmt.str ", \"shielded_tail_lower\": %b}" cmp.cmp_tail_lower);
  Buffer.contents buf

let pp_report ppf r =
  Fmt.pf ppf "SMP soak: %d core(s), policy %s, seed %d, %d entries/core@."
    r.rp_cores
    (Topology.policy_name r.rp_policy)
    r.rp_seed r.rp_entries_per_core;
  Fmt.pf ppf "IPIs: %d sent (+%d coalesced), %d delivered, %d cancelled@."
    r.rp_ipi_sent r.rp_ipi_coalesced r.rp_ipi_delivered r.rp_ipi_cancelled;
  List.iter
    (fun sr ->
      Fmt.pf ppf "%s%s@." sr.sr_scenario
        (match sr.sr_fabric_error with
        | None -> ""
        | Some m -> "  FABRIC: " ^ m);
      Fmt.pf ppf "  %-5s %-7s %-6s %-8s %-6s %8s %8s %8s %9s %5s@." "core"
        "tenants" "lines" "deliv" "ipi" "p50" "p99" "p99.9" "bound" "viol";
      Array.iter
        (fun cr ->
          if cr.cr_parked then Fmt.pf ppf "  %-5d (parked)@." cr.cr_core
          else
            Fmt.pf ppf "  %-5d %-7d %-6d %-8d %-6d %8d %8d %8d %9d %5d@."
              cr.cr_core cr.cr_tenants
              (List.length cr.cr_lines)
              cr.cr_deliveries cr.cr_ipi_delivered cr.cr_latency.Sim.ls_p50
              cr.cr_latency.Sim.ls_p99 cr.cr_latency.Sim.ls_p999
              cr.cr_bound.Bound.b_total
              (List.length cr.cr_violations))
        sr.sr_cores)
    r.rp_scenarios;
  Fmt.pf ppf "%s@."
    (if r.rp_ok then
       "OK (all per-core latencies within the per-core bounds; every IPI \
        delivered or cancelled)"
     else "FAILED")

let pp_comparison ppf cmp =
  Fmt.pf ppf
    "shielded core tail vs spread (%d cores): p99.9 %d vs %d, max %d vs %d — \
     %s@."
    cmp.cmp_cores cmp.cmp_shielded.Sim.ls_p999 cmp.cmp_spread.Sim.ls_p999
    cmp.cmp_shielded.Sim.ls_max cmp.cmp_spread.Sim.ls_max
    (if cmp.cmp_tail_lower then "shielded strictly lower"
     else "NOT strictly lower")
