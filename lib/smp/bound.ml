module Costs = Sel4.Costs

type t = {
  b_core : int;
  b_base : int;
  b_send : int;
  b_recv : int;
  b_contention : int;
  b_total : int;
}

let shared_classes = [ Race.Sched_queues; Race.Cur_thread; Race.Irq_state ]

let interfering_pairs () =
  List.filter
    (fun (p : Race.pair) ->
      List.exists (fun c -> List.mem c shared_classes) p.Race.p_classes)
    (Race.matrix ())

let per_core (topo : Topology.t) ~base ~core =
  let cores = topo.Topology.cores in
  let send =
    if cores > 1 then (cores - 1) * Costs.ipi_send_instrs else 0
  in
  let recv =
    if Topology.receives_ipis topo ~core then
      Costs.ipi_receive_instrs + Costs.tlb_shootdown_instrs
    else 0
  in
  let contention =
    if cores > 1 then
      List.length (interfering_pairs ()) * Costs.remote_line_transfer_cycles
    else 0
  in
  {
    b_core = core;
    b_base = base;
    b_send = send;
    b_recv = recv;
    b_contention = contention;
    b_total = base + send + recv + contention;
  }

let to_json buf t =
  Buffer.add_string buf
    (Fmt.str
       "{\"core\": %d, \"base\": %d, \"ipi_send\": %d, \"ipi_receive\": %d, \
        \"contention\": %d, \"total\": %d}"
       t.b_core t.b_base t.b_send t.b_recv t.b_contention t.b_total)

let pp ppf t =
  Fmt.pf ppf "core %d: %d = %d base + %d send + %d recv + %d contention"
    t.b_core t.b_total t.b_base t.b_send t.b_recv t.b_contention
