(** Per-core interrupt-response bound: the single-core WCET bound plus a
    remote-core interference term.

    On core [c] a pending interrupt's response window can additionally be
    stretched, relative to the single-core analysis, by

    - one outbound IPI burst the core itself initiates between entries (a
      TLB-shootdown broadcast is the worst: one send per remote core),
    - one inbound IPI taken at the window's start — the receive vector
      plus the shootdown handler body, charged only on cores the topology
      routes IPIs to (the shielded core's term is zero, which is the
      measurable benefit of shielding), and
    - cache-line contention on cross-core-shared kernel state.  The
      static interference matrix ({!Race.matrix}) tells us exactly which
      section pairs conflict on state a remote core can touch
      (scheduler queues, the current-thread pointer, IRQ words); each
      such pair charges one remote line transfer.

    Any further IPI or device delivery landing inside the window is a
    queued delivery, and the soak's window check already extends the
    allowance by one interrupt-path WCET per queued delivery — the same
    rule the single-core campaign uses. *)

type t = {
  b_core : int;
  b_base : int;  (** the single-core interrupt-response bound *)
  b_send : int;  (** one worst-case outbound burst: [(cores-1) * send] *)
  b_recv : int;  (** one inbound receive + shootdown body, if targeted *)
  b_contention : int;
      (** interfering section pairs on cross-core-shared classes, one
          remote line transfer each *)
  b_total : int;
}

val shared_classes : Race.cls list
(** The state classes a remote core can contend on: [Sched_queues],
    [Cur_thread], [Irq_state]. *)

val interfering_pairs : unit -> Race.pair list
(** Pairs of the interference matrix that conflict on a shared class. *)

val per_core : Topology.t -> base:int -> core:int -> t
(** All remote terms are zero at [cores = 1] — the bound degenerates to
    the single-core one, byte-for-byte. *)

val to_json : Buffer.t -> t -> unit
val pp : t Fmt.t
