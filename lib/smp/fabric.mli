(** The IPI fabric: cross-core interrupts as a first-class IRQ class.

    Two kinds exist, mirroring what a real SMP seL4 port needs: [Resched]
    (a remote-core reschedule nudge — "the handler I just ran woke a
    thread pinned elsewhere") and [Tlb_shootdown] (a broadcast asking
    remote cores to invalidate translations after an address-space
    mutation).  Each kind owns a dedicated interrupt line near the top of
    the line space, well away from the device lines the scenarios use.

    The fabric models hardware IPI coalescing: while an IPI of some kind
    is outstanding (sent, not yet taken) toward a destination, further
    sends of that kind to the same destination merge into it — exactly
    the pending-bit semantics of an interrupt controller.  Every
    {e accepted} send is eventually delivered or cancelled (cancellation
    happens only when the destination core's run ends first); the
    {!check} function enforces this accounting as an invariant. *)

type kind = Resched | Tlb_shootdown

val resched_line : int
(** Interrupt line carrying [Resched] (30). *)

val shootdown_line : int
(** Interrupt line carrying [Tlb_shootdown] (31). *)

val line_of : kind -> int
val kind_of_line : int -> kind option
val kind_name : kind -> string

type t

val create : cores:int -> t

val send : t -> src:int -> dst:int -> kind -> bool
(** Record an IPI from [src] to [dst].  Returns [true] when the IPI was
    accepted (no IPI of this kind outstanding toward [dst] — the caller
    must now assert the kind's line on the destination) and [false] when
    it coalesced into an already-outstanding one.
    @raise Invalid_argument on [src = dst] or out-of-range cores. *)

val note_delivered : t -> dst:int -> kind -> unit
(** The destination kernel delivered the kind's line: the outstanding
    IPI (and everything that coalesced into it) is consumed. *)

val cancel_outstanding : t -> dst:int -> int
(** Destination core finished its run: cancel whatever is still
    outstanding toward it and return how many IPIs that was. *)

val sent : t -> int
(** Accepted sends (coalesced ones counted separately). *)

val coalesced : t -> int
val delivered : t -> int
val cancelled : t -> int
val in_flight : t -> int
val sent_by_kind : t -> kind -> int
val sent_to : t -> dst:int -> int
val delivered_on : t -> dst:int -> int

val check : final:bool -> t -> (unit, string) result
(** The delivery invariant: [sent = delivered + cancelled + in_flight]
    globally and per destination, all counters non-negative, and — when
    [final] — nothing left in flight (every accepted IPI was delivered
    or cancelled). *)
