type kind = Resched | Tlb_shootdown

(* Lines 30 and 31 sit at the top of the 32-line space; device scenarios
   use lines 1-5 and the timer owns 0, so the IPI class never collides. *)
let resched_line = 30
let shootdown_line = 31

let line_of = function Resched -> resched_line | Tlb_shootdown -> shootdown_line

let kind_of_line l =
  if l = resched_line then Some Resched
  else if l = shootdown_line then Some Tlb_shootdown
  else None

let kind_name = function Resched -> "resched" | Tlb_shootdown -> "tlb_shootdown"

let kind_index = function Resched -> 0 | Tlb_shootdown -> 1

type t = {
  cores : int;
  (* outstanding.(dst).(kind): an accepted IPI is on the wire or pending *)
  outstanding : bool array array;
  mutable sent : int;
  mutable coalesced : int;
  mutable delivered : int;
  mutable cancelled : int;
  sent_kind : int array;  (** by kind index *)
  sent_to : int array;  (** accepted, by destination *)
  delivered_on : int array;
  cancelled_on : int array;
}

let create ~cores =
  if cores < 1 then invalid_arg "Smp.Fabric.create: cores must be >= 1";
  {
    cores;
    outstanding = Array.init cores (fun _ -> Array.make 2 false);
    sent = 0;
    coalesced = 0;
    delivered = 0;
    cancelled = 0;
    sent_kind = Array.make 2 0;
    sent_to = Array.make cores 0;
    delivered_on = Array.make cores 0;
    cancelled_on = Array.make cores 0;
  }

let send t ~src ~dst kind =
  if src = dst then invalid_arg "Smp.Fabric.send: src = dst";
  if src < 0 || src >= t.cores || dst < 0 || dst >= t.cores then
    invalid_arg "Smp.Fabric.send: core out of range";
  let k = kind_index kind in
  if t.outstanding.(dst).(k) then begin
    t.coalesced <- t.coalesced + 1;
    false
  end
  else begin
    t.outstanding.(dst).(k) <- true;
    t.sent <- t.sent + 1;
    t.sent_kind.(k) <- t.sent_kind.(k) + 1;
    t.sent_to.(dst) <- t.sent_to.(dst) + 1;
    true
  end

let note_delivered t ~dst kind =
  let k = kind_index kind in
  if not t.outstanding.(dst).(k) then
    invalid_arg
      (Fmt.str "Smp.Fabric.note_delivered: no outstanding %s toward core %d"
         (kind_name kind) dst);
  t.outstanding.(dst).(k) <- false;
  t.delivered <- t.delivered + 1;
  t.delivered_on.(dst) <- t.delivered_on.(dst) + 1

let cancel_outstanding t ~dst =
  let n = ref 0 in
  Array.iteri
    (fun k o ->
      if o then begin
        t.outstanding.(dst).(k) <- false;
        incr n
      end)
    t.outstanding.(dst);
  t.cancelled <- t.cancelled + !n;
  t.cancelled_on.(dst) <- t.cancelled_on.(dst) + !n;
  !n

let sent t = t.sent
let coalesced t = t.coalesced
let delivered t = t.delivered
let cancelled t = t.cancelled

let in_flight t =
  let n = ref 0 in
  Array.iter (Array.iter (fun o -> if o then incr n)) t.outstanding;
  !n

let sent_by_kind t kind = t.sent_kind.(kind_index kind)
let sent_to t ~dst = t.sent_to.(dst)
let delivered_on t ~dst = t.delivered_on.(dst)

let check ~final t =
  let err fmt = Fmt.kstr Result.error fmt in
  let fl = in_flight t in
  if t.sent < 0 || t.delivered < 0 || t.cancelled < 0 || t.coalesced < 0 then
    err "negative fabric counter"
  else if t.sent <> t.delivered + t.cancelled + fl then
    err "fabric accounting: sent %d <> delivered %d + cancelled %d + in-flight %d"
      t.sent t.delivered t.cancelled fl
  else if final && fl > 0 then
    err "fabric: %d IPI(s) neither delivered nor cancelled at end of run" fl
  else begin
    let bad = ref None in
    for dst = 0 to t.cores - 1 do
      let out =
        (if t.outstanding.(dst).(0) then 1 else 0)
        + if t.outstanding.(dst).(1) then 1 else 0
      in
      if t.sent_to.(dst) <> t.delivered_on.(dst) + t.cancelled_on.(dst) + out
      then
        bad :=
          Some
            (Fmt.str
               "fabric core %d: sent-to %d <> delivered %d + cancelled %d + \
                outstanding %d"
               dst t.sent_to.(dst) t.delivered_on.(dst) t.cancelled_on.(dst)
               out)
    done;
    match !bad with Some m -> Error m | None -> Ok ()
  end
