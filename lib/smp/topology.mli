(** SMP topology: core count, IRQ affinity routing and tenant placement.

    The model is static-affinity SMP in the style of verified-kernel
    multicore designs: threads never migrate (affinity is fixed at
    creation, enforced by {!Sel4.Invariants.check_affinity}), each core
    runs its own scheduler over its own run queues, and device interrupt
    lines are routed to exactly one core by a configurable affinity
    policy.  Cross-core interaction happens only through IPIs
    ({!Fabric}). *)

(** IRQ affinity policy. *)
type policy =
  | Spread
      (** line [l] is delivered to core [l mod cores]; tenants round-robin
          over all cores.  Every core both runs workload and takes
          interrupts. *)
  | Shielded
      (** core 0 is the interrupt core: {e every} device line is routed to
          it and it runs no tenant workload; tenants round-robin over
          cores [1..cores-1].  Core 0 receives no IPIs either — that is
          the shielding discipline this scenario exists to measure. *)

type t = private { cores : int; policy : policy }

val make : cores:int -> policy:policy -> t
(** @raise Invalid_argument when [cores < 1]. *)

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result

val tenant_cores : t -> int list
(** The cores that run tenant workload threads.  Under [Shielded] with
    more than one core this excludes core 0; with a single core it is
    [[0]] (the policies coincide — there is nowhere else to run). *)

val route_line : t -> line:int -> int
(** The core a device line's interrupts are delivered to. *)

val place_tenants : t -> total:int -> int array
(** Per-core tenant-thread counts for a scenario with [total] tenants
    (round-robin over {!tenant_cores}). *)

val receives_ipis : t -> core:int -> bool
(** Does [core] ever receive IPIs under this topology?  Resched nudges
    and TLB shootdowns only target tenant cores, so the shielded core
    never does — which is exactly why its response bound drops. *)

val sends_shootdowns : t -> core:int -> bool
(** May [core] originate TLB-shootdown broadcasts?  Only tenant cores
    mutate address spaces, and a broadcast needs someone else to hit. *)
